//! Best-response path oracles for the min-congestion solver.
//!
//! The Frank–Wolfe loop in [`crate::solver`] is oracle-driven: each
//! iteration asks "cheapest usable path per demanded pair" under the
//! current edge weights. Restricting the oracle restricts the LP —
//! [`CandidateOracle`] over an explicit candidate set gives the
//! semi-oblivious Stage-4 problem (Definition 5.1), [`AllPathsOracle`]
//! over every simple path gives offline OPT (Section 4), and the same
//! all-paths oracle with an edge mask ([`AllPathsOracle::masked`]) gives
//! the offline optimum of a failure-damaged topology. The mask is
//! *configuration*, not a separate oracle type: both instantiations run
//! the one [`ssor_graph::EdgeView`]-generic Dijkstra, so damaged and
//! intact solves cannot drift.
//!
//! # Parallelism and determinism
//!
//! Oracle batches are embarrassingly parallel — the paper's pipeline
//! samples and routes pairs independently (Definition 5.2), and a
//! Dijkstra tree per source is pure computation. [`AllPathsOracle`]
//! groups queries by source and fans the per-source trees out over rayon
//! workers; results are merged back **in source-index order** and
//! interned serially, so the returned ids, costs, and the arena's
//! interning order are bit-identical to a serial sweep at any worker
//! count — the same discipline as the engine's `par_alpha_sample`.
//! Small batches skip the fan-out entirely (the shim spawns threads per
//! call, which only amortizes over enough Dijkstra work); the cutoff
//! affects wall-clock only, never results.
//!
//! # Unreachable pairs
//!
//! `best_paths` reports pairs with no usable path as `None` instead of
//! panicking: a failure sweep with a large knockout can legitimately
//! disconnect a demanded pair mid-trial. Under nonnegative finite
//! weights reachability is weight-independent, so a pair is `None`
//! either on every call or on none — the solver drops such pairs once,
//! at initialization, and reports their demand mass as *stranded* (see
//! `MinCongSolution::stranded`).

use crate::candidates::Candidates;
use ssor_graph::shortest_path::{dijkstra_trees_csr_batch, dijkstra_trees_csr_view_batch, SpTree};
use ssor_graph::{par_ordered_map, Csr, Graph, PathId, PathStore, VertexId};
use std::collections::BTreeMap;

/// Oracle answering "cheapest usable path per pair" under edge weights.
pub trait PathOracle {
    /// For each pair `(s, t)`, interns the minimum-weight usable path
    /// into `store` and returns `(id, weight)` under `w` (indexed by
    /// edge id), or `None` when the pair has no usable path at all (no
    /// candidate, or unreachable through usable edges). The result is
    /// index-aligned with `pairs`; pairs are distinct.
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<Option<(PathId, f64)>>;
}

/// Oracle over an explicit candidate set per pair (the path system).
///
/// Pairs without candidates (or with an empty candidate list) come back
/// `None`; the solver treats their demand as stranded.
#[derive(Debug)]
pub struct CandidateOracle<'a> {
    candidates: Candidates<'a>,
}

/// Below this many pairs the candidate scan stays serial: each pair only
/// costs `α` interned-path weight sums, so small batches are cheaper than
/// a thread spawn.
const CANDIDATE_PAR_MIN_PAIRS: usize = 1024;

impl<'a> CandidateOracle<'a> {
    /// Creates the oracle over a candidate view.
    pub fn new(candidates: Candidates<'a>) -> Self {
        CandidateOracle { candidates }
    }
}

impl PathOracle for CandidateOracle<'_> {
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<Option<(PathId, f64)>> {
        let ext = self.candidates.store();
        // Parallel cost scan (pure, per-pair independent)...
        let best = par_ordered_map(pairs, CANDIDATE_PAR_MIN_PAIRS, |&(s, t)| {
            let cands = self.candidates.ids(s, t)?;
            let mut best: Option<(PathId, f64)> = None;
            for &id in cands {
                let cost = ext.weight(id, w);
                if best.is_none_or(|(_, bc)| cost < bc) {
                    best = Some((id, cost));
                }
            }
            best
        });
        // ...then a serial, index-ordered intern so the solve's arena ids
        // never depend on the thread count.
        best.into_iter()
            .map(|found| {
                found.map(|(id, cost)| (store.intern_parts(ext.vertices(id), ext.edges(id)), cost))
            })
            .collect()
    }
}

/// Oracle over all simple paths via Dijkstra (column generation), with an
/// optional edge-usability mask as configuration.
///
/// Queries are grouped by source so each distinct source costs one
/// Dijkstra run over a CSR adjacency built once for the whole solve; the
/// per-source trees fan out over rayon workers and merge back in
/// deterministic source order (see the module docs). With a mask
/// ([`AllPathsOracle::masked`]) dead edges get infinite length in the
/// same sweep — edge ids and traversal order stay identical to the
/// unmasked oracle, no graph is rebuilt, and no ids shift.
#[derive(Debug)]
pub struct AllPathsOracle<'a> {
    graph: &'a Graph,
    csr: Csr,
    usable: Option<Vec<bool>>,
}

impl<'a> AllPathsOracle<'a> {
    /// Creates an oracle over the whole (intact) graph.
    pub fn new(graph: &'a Graph) -> Self {
        AllPathsOracle {
            graph,
            csr: graph.csr(),
            usable: None,
        }
    }

    /// Creates an oracle restricted to the edges marked usable — the
    /// combined mask a `ssor_graph::SubTopology` exports. The graph
    /// itself is untouched, so loads and routings keep base-graph edge
    /// ids.
    ///
    /// # Panics
    ///
    /// Panics if `usable.len() != graph.m()`.
    pub fn masked(graph: &'a Graph, usable: &[bool]) -> Self {
        assert_eq!(usable.len(), graph.m(), "one mask bit per edge required");
        AllPathsOracle {
            graph,
            csr: graph.csr(),
            usable: Some(usable.to_vec()),
        }
    }
}

impl PathOracle for AllPathsOracle<'_> {
    fn best_paths(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        w: &[f64],
        store: &mut PathStore,
    ) -> Vec<Option<(PathId, f64)>> {
        let mut by_source: BTreeMap<VertexId, Vec<usize>> = BTreeMap::new();
        for (i, &(s, _)) in pairs.iter().enumerate() {
            by_source.entry(s).or_default().push(i);
        }
        let sources: Vec<(VertexId, Vec<usize>)> = by_source.into_iter().collect();
        // Fan the per-source trees out over the shared batch helpers in
        // `ssor_graph::shortest_path`, which return them in source-index
        // order — that ordered collect IS the deterministic merge. The
        // unmasked arm stays on the statically-dispatched batch
        // (monomorphized `FullTopology`, no per-edge vtable call on the
        // solver's hottest loop); a mask rides along as a `dyn EdgeView`
        // only when one actually exists. Both wrap the one generic tree
        // core, so damaged and intact sweeps cannot drift.
        let srcs: Vec<VertexId> = sources.iter().map(|&(s, _)| s).collect();
        let trees: Vec<SpTree> = match &self.usable {
            None => dijkstra_trees_csr_batch(&self.csr, &srcs, &|e| w[e as usize]),
            Some(mask) => dijkstra_trees_csr_view_batch(&self.csr, &srcs, &|e| w[e as usize], mask),
        };
        // Serial path extraction + interning in source order, pair-index
        // order within each source — the arena's id assignment matches a
        // serial sweep exactly.
        let mut out: Vec<Option<(PathId, f64)>> = vec![None; pairs.len()];
        for ((_, idxs), tree) in sources.iter().zip(trees.iter()) {
            for &i in idxs {
                let t = pairs[i].1;
                out[i] = tree
                    .path_to(self.graph, t)
                    .map(|p| (store.intern(&p), tree.dist_to(t)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    // Bitwise equality of the parallel batch oracle against a serial
    // per-source reference lives in `tests/properties.rs`
    // (`parallel_batch_oracle_matches_serial_reference`), which covers
    // random weighted multigraphs, masked and unmasked, with one shared
    // reference implementation. The tests here pin the oracle's own
    // small contracts.
    use super::*;
    use crate::candidates::CandidateSet;
    use ssor_graph::{generators, Path};

    #[test]
    fn masked_oracle_reports_unreachable_as_none() {
        let g = generators::ring(4);
        let usable = [false, true, false, true];
        let mut oracle = AllPathsOracle::masked(&g, &usable);
        let mut store = PathStore::new();
        let got = oracle.best_paths(&[(0, 2), (0, 3)], &vec![1.0; g.m()], &mut store);
        assert!(got[0].is_none(), "0 and 2 are separated by the mask");
        let (id, cost) = got[1].expect("0 -> 3 survives");
        assert_eq!(cost, 1.0);
        assert_eq!(store.materialize(id).vertices(), &[0, 3]);
    }

    #[test]
    fn candidate_oracle_reports_missing_pairs_as_none() {
        let g = generators::ring(6);
        let mut set = CandidateSet::new();
        set.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let mut oracle = CandidateOracle::new(set.as_candidates());
        let mut store = PathStore::new();
        let got = oracle.best_paths(&[(0, 3), (1, 4)], &vec![1.0; g.m()], &mut store);
        assert!(got[0].is_some());
        assert!(got[1].is_none(), "no candidates for (1, 4)");
    }

    #[test]
    fn candidate_oracle_picks_cheapest_candidate() {
        let g = generators::ring(6);
        let mut set = CandidateSet::new();
        set.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        set.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let mut oracle = CandidateOracle::new(set.as_candidates());
        let mut store = PathStore::new();
        // Make the clockwise side expensive.
        let mut w = vec![1.0; g.m()];
        w[0] = 10.0;
        let got = oracle.best_paths(&[(0, 3)], &w, &mut store);
        let (id, cost) = got[0].unwrap();
        assert_eq!(store.materialize(id).vertices(), &[0, 5, 4, 3]);
        assert_eq!(cost, 3.0);
    }

    #[test]
    fn masked_oracle_with_full_mask_matches_unmasked() {
        let g = generators::grid(3, 4);
        let full = vec![true; g.m()];
        let pairs: Vec<(VertexId, VertexId)> =
            vec![(0, 11), (4, 7), (2, 9), (11, 0), (7, 4), (3, 8)];
        let w: Vec<f64> = (0..g.m()).map(|e| 1.0 + (e % 3) as f64).collect();
        let mut open = AllPathsOracle::new(&g);
        let mut masked = AllPathsOracle::masked(&g, &full);
        let mut store_a = PathStore::new();
        let mut store_b = PathStore::new();
        assert_eq!(
            open.best_paths(&pairs, &w, &mut store_a),
            masked.best_paths(&pairs, &w, &mut store_b),
        );
    }
}
