//! Exact integral optima on tiny instances, by branch-and-bound.
//!
//! `opt_{G,Z}(d)` (Section 4) is NP-hard in general; the experiments use the
//! fractional optimum as a lower bound. These exact solvers exist to
//! validate that substitution on instances small enough to enumerate, and
//! to compute the `opt = 1` baselines of the Section 8 lower-bound graphs.

use crate::demand::Demand;
use crate::routing::IntegralRouting;
use ssor_graph::ksp::all_simple_paths;
use ssor_graph::{Graph, Path, VertexId};
use std::collections::BTreeMap;

/// Exact minimum integral congestion where each unit packet must pick one
/// path from its candidate list. Branch-and-bound over packets in order,
/// pruning on the running max congestion. Exponential — use only when
/// `prod |candidates|` is tiny.
///
/// Returns the optimal congestion and one witnessing routing, or `None`
/// if some packet has no candidates.
///
/// # Panics
///
/// Panics if `d` is not integral.
pub fn integral_opt_restricted(
    g: &Graph,
    d: &Demand,
    candidates: &BTreeMap<(VertexId, VertexId), Vec<Path>>,
) -> Option<(u64, IntegralRouting)> {
    assert!(d.is_integral());
    // Expand to unit packets.
    let mut packets: Vec<(VertexId, VertexId)> = Vec::new();
    for ((s, t), w) in d.iter() {
        for _ in 0..(w.round() as usize) {
            packets.push((s, t));
        }
    }
    if packets.is_empty() {
        return Some((0, IntegralRouting::new()));
    }
    for &(s, t) in &packets {
        if candidates.get(&(s, t)).is_none_or(|c| c.is_empty()) {
            return None;
        }
    }

    let mut best = u64::MAX;
    let mut best_choice: Vec<usize> = Vec::new();
    let mut choice = vec![0usize; packets.len()];
    let mut loads = vec![0u64; g.m()];

    #[allow(clippy::too_many_arguments)] // branch-and-bound state threaded explicitly
    fn rec(
        i: usize,
        packets: &[(VertexId, VertexId)],
        candidates: &BTreeMap<(VertexId, VertexId), Vec<Path>>,
        loads: &mut Vec<u64>,
        choice: &mut Vec<usize>,
        best: &mut u64,
        best_choice: &mut Vec<usize>,
        current_max: u64,
    ) {
        if current_max >= *best {
            return; // prune
        }
        if i == packets.len() {
            *best = current_max;
            *best_choice = choice.clone();
            return;
        }
        let (s, t) = packets[i];
        for (ci, p) in candidates[&(s, t)].iter().enumerate() {
            let mut new_max = current_max;
            for &e in p.edges() {
                loads[e as usize] += 1;
                new_max = new_max.max(loads[e as usize]);
            }
            choice[i] = ci;
            rec(
                i + 1,
                packets,
                candidates,
                loads,
                choice,
                best,
                best_choice,
                new_max,
            );
            for &e in p.edges() {
                loads[e as usize] -= 1;
            }
        }
    }

    rec(
        0,
        &packets,
        candidates,
        &mut loads,
        &mut choice,
        &mut best,
        &mut best_choice,
        0,
    );

    // Reassemble the witness.
    let mut per_pair: BTreeMap<(VertexId, VertexId), Vec<Path>> = BTreeMap::new();
    for (i, &(s, t)) in packets.iter().enumerate() {
        per_pair
            .entry((s, t))
            .or_default()
            .push(candidates[&(s, t)][best_choice[i]].clone());
    }
    let mut ir = IntegralRouting::new();
    for ((s, t), ps) in per_pair {
        ir.set_paths(s, t, ps);
    }
    Some((best, ir))
}

/// Exact `opt_{G,Z}(d)` over *all* simple paths of hop length at most
/// `max_hop`, via exhaustive enumeration plus [`integral_opt_restricted`].
/// Only for tiny graphs.
pub fn integral_opt_exhaustive(
    g: &Graph,
    d: &Demand,
    max_hop: usize,
) -> Option<(u64, IntegralRouting)> {
    let mut candidates: BTreeMap<(VertexId, VertexId), Vec<Path>> = BTreeMap::new();
    for (s, t) in d.support() {
        let paths = all_simple_paths(g, s, t, max_hop);
        if paths.is_empty() {
            return None;
        }
        candidates.insert((s, t), paths);
    }
    integral_opt_restricted(g, d, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    #[test]
    fn empty_demand() {
        let g = generators::ring(4);
        let (c, _) = integral_opt_exhaustive(&g, &Demand::new(), 4).unwrap();
        assert_eq!(c, 0);
    }

    #[test]
    fn two_packets_on_cycle_use_disjoint_sides() {
        let g = generators::ring(4);
        let d = Demand::from_pairs(&[(0, 2)]).scaled(2.0);
        let (c, ir) = integral_opt_exhaustive(&g, &d, 4).unwrap();
        assert_eq!(c, 1, "one packet per side of the cycle");
        assert!(ir.routes(&d));
        assert_eq!(ir.congestion(&g), 1);
    }

    #[test]
    fn forced_overlap_gives_congestion_two() {
        // Path graph: both packets must share the middle edge.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let d = Demand::from_pairs(&[(0, 2)]).scaled(2.0);
        let (c, _) = integral_opt_exhaustive(&g, &d, 3).unwrap();
        assert_eq!(c, 2);
    }

    #[test]
    fn fractional_lower_bounds_integral() {
        use crate::solver::{min_congestion_unrestricted, SolveOptions};
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (6, 2), (3, 5)]);
        let (int_opt, _) = integral_opt_exhaustive(&g, &d, 6).unwrap();
        let frac = min_congestion_unrestricted(&g, &d, &SolveOptions::default());
        assert!(
            frac.lower_bound <= int_opt as f64 + 1e-9,
            "fractional LB {} must lower-bound integral OPT {}",
            frac.lower_bound,
            int_opt
        );
    }

    #[test]
    fn restricted_candidates_respected() {
        let g = generators::ring(6);
        let mut cands = BTreeMap::new();
        cands.insert(
            (0u32, 3u32),
            vec![Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap()],
        );
        let d = Demand::from_pairs(&[(0, 3)]).scaled(3.0);
        let (c, ir) = integral_opt_restricted(&g, &d, &cands).unwrap();
        assert_eq!(c, 3, "single candidate forces full overlap");
        assert!(ir.routes(&d));
    }

    #[test]
    fn missing_candidates_yield_none() {
        let g = generators::ring(4);
        let d = Demand::from_pairs(&[(0, 2)]);
        let cands = BTreeMap::new();
        assert!(integral_opt_restricted(&g, &d, &cands).is_none());
    }
}
