//! # ssor-flow
//!
//! Multicommodity-flow substrate for the `ssor` workspace (reproduction of
//! *Sparse Semi-Oblivious Routing: Few Random Paths Suffice*, PODC 2023).
//!
//! Provides the objects of Section 4 of the paper and the LP machinery the
//! semi-oblivious Stage 4 needs:
//!
//! * [`Demand`] — demand matrices (Definition 2.2): arbitrary, integral,
//!   `{0,1}`, permutation; hypercube adversaries;
//! * [`Routing`] / [`IntegralRouting`] — per-pair path distributions with
//!   congestion (`cong`) and dilation (`dil`) exactly as defined in the
//!   paper;
//! * [`solver`] — the one staged-smoothing Frank–Wolfe min-congestion
//!   core with dual certificates: cold one-shot entry points
//!   ([`min_congestion_restricted`], [`min_congestion_unrestricted`],
//!   [`min_congestion_masked`]) and the stateful [`Solver`] whose carried
//!   per-pair distributions warm-start every [`Solver::resolve`];
//! * [`oracle`] — the pluggable best-response layer the solver consumes:
//!   candidate sets (Stage-4 rate adaptation) or all simple paths,
//!   optionally failure-masked, with a rayon-parallel per-source Dijkstra
//!   fan-out that is bit-identical at any thread count;
//! * [`Candidates`] / [`CandidateSet`] — the interned candidate-path view
//!   the restricted solver consumes (a `PathStore` arena plus per-pair
//!   `PathId` lists);
//! * [`lp`] — a small dense two-phase simplex used to cross-validate the
//!   Frank–Wolfe solver exactly;
//! * [`rounding`] — the Lemma 6.3 randomized rounding plus local search;
//! * [`integral_opt`] — exact integral optima on tiny instances.
//!
//! # Examples
//!
//! ```
//! use ssor_flow::{solver, Demand};
//! use ssor_graph::generators;
//!
//! let g = generators::ring(6);
//! let d = Demand::from_pairs(&[(0, 3)]);
//! let sol = solver::min_congestion_unrestricted(&g, &d, &Default::default());
//! // One unit across a 6-cycle splits over both sides: congestion 1/2.
//! assert!((sol.congestion - 0.5).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod candidates;
pub mod decompose;
mod demand;
pub mod integral_opt;
pub mod lp;
pub mod oracle;
pub mod rounding;
mod routing;
pub mod solver;

pub use candidates::{CandidateSet, Candidates};
pub use demand::Demand;
pub use oracle::{AllPathsOracle, CandidateOracle, PathOracle};
pub use routing::{IntegralRouting, Routing, WeightedPath};
pub use solver::{
    min_congestion, min_congestion_masked, min_congestion_restricted, min_congestion_unrestricted,
    DemandDelta, MinCongSolution, SolveOptions, Solver, SolverStats,
};
