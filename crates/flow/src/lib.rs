//! # ssor-flow
//!
//! Multicommodity-flow substrate for the `ssor` workspace (reproduction of
//! *Sparse Semi-Oblivious Routing: Few Random Paths Suffice*, PODC 2023).
//!
//! Provides the objects of Section 4 of the paper and the LP machinery the
//! semi-oblivious Stage 4 needs:
//!
//! * [`Demand`] — demand matrices (Definition 2.2): arbitrary, integral,
//!   `{0,1}`, permutation; hypercube adversaries;
//! * [`Routing`] / [`IntegralRouting`] — per-pair path distributions with
//!   congestion (`cong`) and dilation (`dil`) exactly as defined in the
//!   paper;
//! * [`mincong`] — Frank–Wolfe min-congestion solver with dual
//!   certificates: restricted to a candidate path system (Stage-4 rate
//!   adaptation), unrestricted (offline fractional OPT), and masked to a
//!   failure-damaged subtopology (`min_congestion_masked`);
//! * [`warm`] — warm-started incremental re-solves for demand streams and
//!   failure drills ([`warm::Solution::resolve`] reuses the previous
//!   flow instead of solving from scratch);
//! * [`Candidates`] / [`CandidateSet`] — the interned candidate-path view
//!   the restricted solver consumes (a `PathStore` arena plus per-pair
//!   `PathId` lists);
//! * [`lp`] — a small dense two-phase simplex used to cross-validate the
//!   Frank–Wolfe solver exactly;
//! * [`rounding`] — the Lemma 6.3 randomized rounding plus local search;
//! * [`integral_opt`] — exact integral optima on tiny instances.
//!
//! # Examples
//!
//! ```
//! use ssor_flow::{mincong, Demand};
//! use ssor_graph::generators;
//!
//! let g = generators::ring(6);
//! let d = Demand::from_pairs(&[(0, 3)]);
//! let sol = mincong::min_congestion_unrestricted(&g, &d, &Default::default());
//! // One unit across a 6-cycle splits over both sides: congestion 1/2.
//! assert!((sol.congestion - 0.5).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod candidates;
pub mod decompose;
mod demand;
pub mod integral_opt;
pub mod lp;
pub mod mincong;
pub mod rounding;
mod routing;
pub mod warm;

pub use candidates::{CandidateSet, Candidates};
pub use demand::Demand;
pub use mincong::{MinCongSolution, SolveOptions};
pub use routing::{IntegralRouting, Routing, WeightedPath};
