//! Routings: per-pair distributions over paths, plus congestion and
//! dilation (Section 4 of the paper).

use crate::demand::Demand;
use ssor_graph::{par_ordered_map, EdgeLoads, Graph, Path, VertexId};
use std::collections::BTreeMap;

/// A path together with its probability mass within `R(s, t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPath {
    /// The path (endpoints must match the pair this entry belongs to).
    pub path: Path,
    /// Probability mass; entries of one pair sum to 1.
    pub weight: f64,
}

/// A routing `R = {R(s, t)}`: for each pair in its domain, a distribution
/// over `(s, t)`-paths (Section 4). Routing a demand `d` assigns flow
/// `d(s, t) * weight(p)` to each path `p` in `R(s, t)`.
///
/// # Examples
///
/// ```
/// use ssor_flow::{Demand, Routing};
/// use ssor_graph::{Graph, Path};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let mut r = Routing::new();
/// r.set_distribution(
///     0,
///     2,
///     vec![
///         (Path::from_vertices(&g, &[0, 1, 2]).unwrap(), 0.5),
///         (Path::from_vertices(&g, &[0, 2]).unwrap(), 0.5),
///     ],
/// );
/// let d = Demand::from_pairs(&[(0, 2)]);
/// assert_eq!(r.congestion(&g, &d), 0.5);
/// assert_eq!(r.dilation(&d), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Routing {
    per_pair: BTreeMap<(VertexId, VertexId), Vec<WeightedPath>>,
}

impl Routing {
    /// The empty routing (no pairs).
    pub fn new() -> Self {
        Routing::default()
    }

    /// Sets the distribution for pair `(s, t)`, normalizing the weights.
    ///
    /// Every weight is validated *before* it enters the normalizing
    /// total: a negative, NaN, or infinite weight would otherwise poison
    /// the normalization silently (a negative weight shrinks the total,
    /// inflating every kept path's probability above 1; a NaN total turns
    /// every downstream congestion number into NaN).
    ///
    /// # Panics
    ///
    /// Panics if any path does not run from `s` to `t`, if any weight is
    /// negative or non-finite (NaN/∞), or if the weights sum to zero or
    /// to a non-finite total.
    pub fn set_distribution(&mut self, s: VertexId, t: VertexId, paths: Vec<(Path, f64)>) {
        assert!(!paths.is_empty(), "distribution needs at least one path");
        for (_, w) in &paths {
            assert!(
                w.is_finite() && *w >= 0.0,
                "path weight must be finite and nonnegative, got {w}"
            );
        }
        let total: f64 = paths.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "weights must not all be zero");
        assert!(
            total.is_finite(),
            "path weights must sum to a finite total, got {total}"
        );
        let entry: Vec<WeightedPath> = paths
            .into_iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|(path, w)| {
                assert_eq!(path.source(), s, "path source mismatch");
                assert_eq!(path.target(), t, "path target mismatch");
                WeightedPath {
                    path,
                    weight: w / total,
                }
            })
            .collect();
        self.per_pair.insert((s, t), entry);
    }

    /// Routes the whole pair on a single path.
    pub fn set_single_path(&mut self, path: Path) {
        let (s, t) = (path.source(), path.target());
        self.set_distribution(s, t, vec![(path, 1.0)]);
    }

    /// The distribution for `(s, t)`, if defined.
    pub fn distribution(&self, s: VertexId, t: VertexId) -> Option<&[WeightedPath]> {
        self.per_pair.get(&(s, t)).map(|v| v.as_slice())
    }

    /// Pairs with a defined distribution.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.per_pair.keys().copied()
    }

    /// Number of pairs with a defined distribution.
    pub fn len(&self) -> usize {
        self.per_pair.len()
    }

    /// Whether no pair is defined.
    pub fn is_empty(&self) -> bool {
        self.per_pair.is_empty()
    }

    /// Whether the routing covers the support of `d`.
    pub fn covers(&self, d: &Demand) -> bool {
        d.support().iter().all(|k| self.per_pair.contains_key(k))
    }

    /// Per-edge load when routing `d` (`cong(R, d, e)` for every `e`),
    /// accumulated in the workspace's dense [`EdgeLoads`] representation.
    ///
    /// Demands with many pairs accumulate in parallel: the support is cut
    /// into *fixed-size* blocks (so the partials — and with them every
    /// floating-point rounding — are independent of the rayon thread
    /// count) and the per-block partials reduce through
    /// [`EdgeLoads::par_merge`].
    ///
    /// Pairs of `d` without a distribution contribute nothing; use
    /// [`Routing::covers`] to check coverage first.
    pub fn edge_loads(&self, g: &Graph, d: &Demand) -> EdgeLoads {
        // Fixed block size: partials must not depend on the thread count,
        // or congestion numbers would drift across machines.
        const PAR_MIN_PAIRS: usize = 256;
        const BLOCK: usize = 64;
        let support = d.support();
        if support.len() < PAR_MIN_PAIRS {
            let mut load = EdgeLoads::for_graph(g);
            self.accumulate_pairs(d, &support, &mut load);
            return load;
        }
        let blocks: Vec<&[(VertexId, VertexId)]> = support.chunks(BLOCK).collect();
        // Fan out over the workspace's ordered primitive (the serial
        // small-support path already returned above, so min_par is moot).
        let partials: Vec<EdgeLoads> = par_ordered_map(&blocks, 2, |chunk| {
            let mut load = EdgeLoads::for_graph(g);
            self.accumulate_pairs(d, chunk, &mut load);
            load
        });
        EdgeLoads::par_merge(&partials)
    }

    /// Accumulates the load of `pairs` (a slice of `d`'s support) into
    /// `load`.
    fn accumulate_pairs(&self, d: &Demand, pairs: &[(VertexId, VertexId)], load: &mut EdgeLoads) {
        for &(s, t) in pairs {
            let w = d.get(s, t);
            if let Some(dist) = self.per_pair.get(&(s, t)) {
                for wp in dist {
                    load.add_edges(wp.path.edges(), w * wp.weight);
                }
            }
        }
    }

    /// `cong(R, d) = max_e cong(R, d, e)` (0 for an empty demand).
    pub fn congestion(&self, g: &Graph, d: &Demand) -> f64 {
        self.edge_loads(g, d).max()
    }

    /// `dil(R, d)`: maximum hop length over paths receiving positive weight
    /// on the support of `d` (0 for an empty demand).
    pub fn dilation(&self, d: &Demand) -> usize {
        let mut best = 0;
        for ((s, t), _) in d.iter() {
            if let Some(dist) = self.per_pair.get(&(s, t)) {
                for wp in dist {
                    if wp.weight > 0.0 {
                        best = best.max(wp.path.hop());
                    }
                }
            }
        }
        best
    }

    /// Checks structural validity against a graph: every path valid and
    /// simple, per-pair weights summing to 1.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.per_pair.iter().all(|(&(s, t), dist)| {
            let total: f64 = dist.iter().map(|wp| wp.weight).sum();
            (total - 1.0).abs() < 1e-6
                && dist.iter().all(|wp| {
                    wp.path.source() == s
                        && wp.path.target() == t
                        && wp.path.is_valid(g)
                        && wp.path.is_simple()
                })
        })
    }

    /// Merges two routings on *disjoint* demands `d1`, `d2` into a routing
    /// for `d1 + d2` (Lemma 5.15, the demand-sum lemma): on a pair carried
    /// by both, the distributions are mixed proportionally to the demands.
    pub fn demand_weighted_merge(r1: &Routing, d1: &Demand, r2: &Routing, d2: &Demand) -> Routing {
        let mut out = Routing::new();
        let d = d1.plus(d2);
        for ((s, t), total) in d.iter() {
            let w1 = d1.get(s, t);
            let w2 = d2.get(s, t);
            let mut mix: Vec<(Path, f64)> = Vec::new();
            if w1 > 0.0 {
                if let Some(dist) = r1.distribution(s, t) {
                    mix.extend(
                        dist.iter()
                            .map(|wp| (wp.path.clone(), wp.weight * w1 / total)),
                    );
                }
            }
            if w2 > 0.0 {
                if let Some(dist) = r2.distribution(s, t) {
                    mix.extend(
                        dist.iter()
                            .map(|wp| (wp.path.clone(), wp.weight * w2 / total)),
                    );
                }
            }
            if !mix.is_empty() {
                out.set_distribution(s, t, mix);
            }
        }
        out
    }
}

/// An *integral* routing on a demand `d`: for each pair, a multiset of
/// paths, one per unit of (integer) demand. This realizes "R is integral on
/// d" from Section 4 without fractional bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegralRouting {
    per_pair: BTreeMap<(VertexId, VertexId), Vec<Path>>,
}

impl IntegralRouting {
    /// Empty integral routing.
    pub fn new() -> Self {
        IntegralRouting::default()
    }

    /// Assigns the list of unit-demand paths for pair `(s, t)`; the list
    /// length must equal `d(s, t)` when routing demand `d`.
    ///
    /// # Panics
    ///
    /// Panics if any path has wrong endpoints.
    pub fn set_paths(&mut self, s: VertexId, t: VertexId, paths: Vec<Path>) {
        for p in &paths {
            assert_eq!(p.source(), s);
            assert_eq!(p.target(), t);
        }
        self.per_pair.insert((s, t), paths);
    }

    /// The unit paths for `(s, t)`.
    pub fn paths(&self, s: VertexId, t: VertexId) -> Option<&[Path]> {
        self.per_pair.get(&(s, t)).map(|v| v.as_slice())
    }

    /// Pairs covered.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.per_pair.keys().copied()
    }

    /// Per-edge integer load.
    pub fn edge_loads(&self, g: &Graph) -> Vec<u64> {
        let mut load = vec![0u64; g.m()];
        for paths in self.per_pair.values() {
            for p in paths {
                for &e in p.edges() {
                    load[e as usize] += 1;
                }
            }
        }
        load
    }

    /// Maximum edge congestion.
    pub fn congestion(&self, g: &Graph) -> u64 {
        self.edge_loads(g).into_iter().max().unwrap_or(0)
    }

    /// Maximum hop length over all paths.
    pub fn dilation(&self) -> usize {
        self.per_pair
            .values()
            .flat_map(|ps| ps.iter().map(|p| p.hop()))
            .max()
            .unwrap_or(0)
    }

    /// Whether this integrally routes `d`: the path count of each pair
    /// equals its (integer) demand.
    pub fn routes(&self, d: &Demand) -> bool {
        if !d.is_integral() {
            return false;
        }
        d.iter().all(|((s, t), w)| {
            let cnt = self.paths(s, t).map_or(0, |p| p.len());
            cnt as f64 == w.round()
        })
    }

    /// View as a fractional [`Routing`] (uniform over the multiset).
    pub fn as_fractional(&self) -> Routing {
        let mut r = Routing::new();
        for (&(s, t), paths) in &self.per_pair {
            if !paths.is_empty() {
                r.set_distribution(s, t, paths.iter().map(|p| (p.clone(), 1.0)).collect());
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn congestion_of_split_routing() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_distribution(
            0,
            2,
            vec![
                (Path::from_vertices(&g, &[0, 1, 2]).unwrap(), 1.0),
                (Path::from_vertices(&g, &[0, 2]).unwrap(), 3.0),
            ],
        );
        let d = Demand::from_pairs(&[(0, 2)]);
        // Weights normalize to 0.25 / 0.75.
        let loads = r.edge_loads(&g, &d);
        assert!((loads.get(0) - 0.25).abs() < 1e-12);
        assert!((loads.get(1) - 0.25).abs() < 1e-12);
        assert!((loads.get(2) - 0.75).abs() < 1e-12);
        assert!((r.congestion(&g, &d) - 0.75).abs() < 1e-12);
        assert_eq!(r.dilation(&d), 2);
        assert!(r.is_valid(&g));
    }

    #[test]
    fn congestion_scales_linearly_with_demand() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_single_path(Path::from_vertices(&g, &[0, 1, 2]).unwrap());
        let d = Demand::from_pairs(&[(0, 2)]);
        let c1 = r.congestion(&g, &d);
        let c3 = r.congestion(&g, &d.scaled(3.0));
        assert!((c3 - 3.0 * c1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "path source mismatch")]
    fn set_distribution_validates_endpoints() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_distribution(1, 2, vec![(Path::from_vertices(&g, &[0, 2]).unwrap(), 1.0)]);
    }

    // Regression: a negative weight used to be filtered out *after*
    // entering the normalizing total, so `[2.0, -1.0]` normalized the
    // kept path by 1.0 and produced a "distribution" of total mass 2 —
    // silently doubling every congestion number downstream. It must be
    // rejected loudly instead.
    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn set_distribution_rejects_negative_weight() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_distribution(
            0,
            2,
            vec![
                (Path::from_vertices(&g, &[0, 1, 2]).unwrap(), 2.0),
                (Path::from_vertices(&g, &[0, 2]).unwrap(), -1.0),
            ],
        );
    }

    // Regression: a NaN weight used to surface (if at all) as the
    // misleading "weights must not all be zero"; now it is named.
    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn set_distribution_rejects_nan_weight() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_distribution(
            0,
            2,
            vec![
                (Path::from_vertices(&g, &[0, 1, 2]).unwrap(), 1.0),
                (Path::from_vertices(&g, &[0, 2]).unwrap(), f64::NAN),
            ],
        );
    }

    // Regression: an infinite weight used to normalize every path to
    // 0/NaN silently.
    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn set_distribution_rejects_infinite_weight() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_distribution(
            0,
            2,
            vec![(Path::from_vertices(&g, &[0, 2]).unwrap(), f64::INFINITY)],
        );
    }

    #[test]
    fn merge_matches_demand_sum_lemma() {
        // Lemma 5.15: cong(R, d1 + d2) <= cong(R1, d1) + cong(R2, d2).
        let g = generators::ring(6);
        let mut r1 = Routing::new();
        r1.set_single_path(Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let mut r2 = Routing::new();
        r2.set_single_path(Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let d1 = Demand::from_pairs(&[(0, 3)]);
        let d2 = Demand::from_pairs(&[(0, 3)]).scaled(2.0);
        let merged = Routing::demand_weighted_merge(&r1, &d1, &r2, &d2);
        let d = d1.plus(&d2);
        let c = merged.congestion(&g, &d);
        let bound = r1.congestion(&g, &d1) + r2.congestion(&g, &d2);
        assert!(c <= bound + 1e-9, "c = {c}, bound = {bound}");
        assert!(merged.is_valid(&g));
    }

    #[test]
    fn covers_checks_support() {
        let g = triangle();
        let mut r = Routing::new();
        r.set_single_path(Path::from_vertices(&g, &[0, 2]).unwrap());
        assert!(r.covers(&Demand::from_pairs(&[(0, 2)])));
        assert!(!r.covers(&Demand::from_pairs(&[(1, 2)])));
    }

    #[test]
    fn integral_routing_roundtrip() {
        let g = triangle();
        let mut ir = IntegralRouting::new();
        ir.set_paths(
            0,
            2,
            vec![
                Path::from_vertices(&g, &[0, 2]).unwrap(),
                Path::from_vertices(&g, &[0, 1, 2]).unwrap(),
            ],
        );
        let d = Demand::new().plus(&Demand::from_pairs(&[(0, 2)]).scaled(2.0));
        assert!(ir.routes(&d));
        assert_eq!(ir.congestion(&g), 1);
        assert_eq!(ir.dilation(), 2);
        let frac = ir.as_fractional();
        assert!(frac.is_valid(&g));
        // Fractional view halves each path's weight.
        assert!((frac.congestion(&g, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_routing_properties() {
        let g = triangle();
        let r = Routing::new();
        assert!(r.is_empty());
        assert_eq!(r.congestion(&g, &Demand::new()), 0.0);
        assert_eq!(r.dilation(&Demand::new()), 0);
        let ir = IntegralRouting::new();
        assert_eq!(ir.congestion(&g), 0);
    }
}
