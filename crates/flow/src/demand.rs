//! Demand matrices (Definition 2.2 of the paper).
//!
//! A demand is a map `d : V x V -> R_{>=0}` with `d(v, v) = 0`. We keep the
//! support in a sorted map so that iteration — and therefore every
//! downstream randomized algorithm seeded from a fixed RNG — is
//! deterministic.

use rand::seq::SliceRandom;
use rand::Rng;
use ssor_graph::VertexId;
use std::collections::BTreeMap;

/// A demand matrix: nonnegative weight per ordered vertex pair.
///
/// Demands are *directed* pairs `(s, t)` as in the paper (packets have a
/// source and a destination), although routing happens on undirected paths.
///
/// # Examples
///
/// ```
/// use ssor_flow::Demand;
///
/// let mut d = Demand::new();
/// d.set(0, 3, 2.0);
/// d.add(0, 3, 1.0);
/// assert_eq!(d.get(0, 3), 3.0);
/// assert_eq!(d.size(), 3.0); // siz(d) = sum of entries
/// assert!(d.is_integral());
/// assert!(!d.is_zero_one());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Demand {
    entries: BTreeMap<(VertexId, VertexId), f64>,
}

impl Demand {
    /// The empty demand.
    pub fn new() -> Self {
        Demand::default()
    }

    /// Demand with `d(s, t) = 1` for each listed pair (duplicates
    /// accumulate).
    ///
    /// # Panics
    ///
    /// Panics if any pair has `s == t`.
    pub fn from_pairs(pairs: &[(VertexId, VertexId)]) -> Self {
        let mut d = Demand::new();
        for &(s, t) in pairs {
            d.add(s, t, 1.0);
        }
        d
    }

    /// Sets `d(s, t) = w`. Setting `w = 0` removes the entry.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` with `w > 0`, or if `w` is negative/NaN.
    pub fn set(&mut self, s: VertexId, t: VertexId, w: f64) {
        assert!(
            w >= 0.0 && w.is_finite(),
            "demand must be finite and nonnegative"
        );
        if w == 0.0 {
            self.entries.remove(&(s, t));
        } else {
            assert!(s != t, "d(v, v) must be 0 (Definition 2.2)");
            self.entries.insert((s, t), w);
        }
    }

    /// Adds `w` to `d(s, t)`.
    pub fn add(&mut self, s: VertexId, t: VertexId, w: f64) {
        let cur = self.get(s, t);
        self.set(s, t, cur + w);
    }

    /// Current value of `d(s, t)` (0 outside the support).
    pub fn get(&self, s: VertexId, t: VertexId) -> f64 {
        self.entries.get(&(s, t)).copied().unwrap_or(0.0)
    }

    /// `siz(d) = sum_{s != t} d(s, t)`.
    pub fn size(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Number of pairs in the support.
    pub fn support_len(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over `((s, t), d(s, t))` in sorted pair order.
    pub fn iter(&self) -> impl Iterator<Item = ((VertexId, VertexId), f64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// The support as a sorted list of pairs.
    pub fn support(&self) -> Vec<(VertexId, VertexId)> {
        self.entries.keys().copied().collect()
    }

    /// Whether every entry is (numerically) a nonnegative integer.
    pub fn is_integral(&self) -> bool {
        self.entries.values().all(|&v| (v - v.round()).abs() < 1e-9)
    }

    /// Whether every entry is exactly 1 (a `{0, 1}`-demand).
    pub fn is_zero_one(&self) -> bool {
        self.entries.values().all(|&v| (v - 1.0).abs() < 1e-9)
    }

    /// Whether this is a permutation demand: a `{0, 1}`-demand where every
    /// vertex appears at most once as a source and at most once as a target.
    pub fn is_permutation(&self) -> bool {
        if !self.is_zero_one() {
            return false;
        }
        let mut sources = std::collections::HashSet::new();
        let mut targets = std::collections::HashSet::new();
        self.entries
            .keys()
            .all(|&(s, t)| sources.insert(s) && targets.insert(t))
    }

    /// Whether the demand is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `c * d` (scaling every entry).
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or non-finite.
    pub fn scaled(&self, c: f64) -> Demand {
        assert!(c >= 0.0 && c.is_finite());
        let mut out = Demand::new();
        for (&k, &v) in &self.entries {
            if c * v > 0.0 {
                out.entries.insert(k, c * v);
            }
        }
        out
    }

    /// Pointwise sum of two demands (Lemma 5.15's `d = d1 + d2`).
    pub fn plus(&self, other: &Demand) -> Demand {
        let mut out = self.clone();
        for (&(s, t), &v) in &other.entries {
            out.add(s, t, v);
        }
        out
    }

    /// Pointwise difference `self - other`, clamped at zero.
    pub fn minus_clamped(&self, other: &Demand) -> Demand {
        let mut out = Demand::new();
        for (&(s, t), &v) in &self.entries {
            let w = (v - other.get(s, t)).max(0.0);
            if w > 1e-12 {
                out.set(s, t, w);
            }
        }
        out
    }

    /// The restriction of the demand to pairs satisfying `keep`.
    pub fn filtered(&self, mut keep: impl FnMut(VertexId, VertexId, f64) -> bool) -> Demand {
        let mut out = Demand::new();
        for (&(s, t), &v) in &self.entries {
            if keep(s, t, v) {
                out.entries.insert((s, t), v);
            }
        }
        out
    }

    /// A uniformly random permutation demand on vertices `0..n` with no
    /// fixed points (a random derangement-ish matching: fixed points are
    /// simply dropped, so the size may be slightly below `n`).
    pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Demand {
        let mut targets: Vec<VertexId> = (0..n as VertexId).collect();
        targets.shuffle(rng);
        let mut d = Demand::new();
        for (s, &t) in targets.iter().enumerate() {
            if s as VertexId != t {
                d.set(s as VertexId, t, 1.0);
            }
        }
        d
    }

    /// A `{0, 1}`-demand on `pairs` random distinct pairs from `0..n`.
    pub fn random_pairs<R: Rng + ?Sized>(n: usize, pairs: usize, rng: &mut R) -> Demand {
        let mut d = Demand::new();
        let mut guard = 0;
        while d.support_len() < pairs && guard < 100 * pairs + 100 {
            let s = rng.gen_range(0..n) as VertexId;
            let t = rng.gen_range(0..n) as VertexId;
            if s != t {
                d.set(s, t, 1.0);
            }
            guard += 1;
        }
        d
    }

    /// The bit-complement permutation on the `d`-dimensional hypercube:
    /// every vertex sends to its bitwise complement. A classic hard
    /// instance for deterministic oblivious routing `[KKT91]`.
    pub fn hypercube_complement(dim: u32) -> Demand {
        let n = 1u32 << dim;
        let mask = n - 1;
        Demand::from_pairs(
            &(0..n)
                .filter(|&v| v != (v ^ mask))
                .map(|v| (v, v ^ mask))
                .collect::<Vec<_>>(),
        )
    }

    /// The bit-reversal permutation on the `d`-dimensional hypercube:
    /// vertex `b_{d-1}..b_0` sends to `b_0..b_{d-1}`. The canonical
    /// `Ω(sqrt(n))` adversary for single-path greedy bit-fixing routing.
    pub fn hypercube_bit_reversal(dim: u32) -> Demand {
        let n = 1u32 << dim;
        let rev = |v: u32| {
            let mut r = 0u32;
            for b in 0..dim {
                if v & (1 << b) != 0 {
                    r |= 1 << (dim - 1 - b);
                }
            }
            r
        };
        Demand::from_pairs(
            &(0..n)
                .filter(|&v| v != rev(v))
                .map(|v| (v, rev(v)))
                .collect::<Vec<_>>(),
        )
    }

    /// The transpose permutation on the hypercube (requires even `dim`):
    /// the high half of bits and the low half swap. Another classic hard
    /// instance for deterministic bit-fixing.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is odd.
    pub fn hypercube_transpose(dim: u32) -> Demand {
        assert!(
            dim.is_multiple_of(2),
            "transpose permutation needs even dimension"
        );
        let half = dim / 2;
        let n = 1u32 << dim;
        let tr = |v: u32| {
            let lo = v & ((1 << half) - 1);
            let hi = v >> half;
            (lo << half) | hi
        };
        Demand::from_pairs(
            &(0..n)
                .filter(|&v| v != tr(v))
                .map(|v| (v, tr(v)))
                .collect::<Vec<_>>(),
        )
    }
}

impl FromIterator<((VertexId, VertexId), f64)> for Demand {
    fn from_iter<I: IntoIterator<Item = ((VertexId, VertexId), f64)>>(iter: I) -> Self {
        let mut d = Demand::new();
        for ((s, t), w) in iter {
            d.add(s, t, w);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn set_get_add() {
        let mut d = Demand::new();
        d.set(1, 2, 0.5);
        d.add(1, 2, 0.25);
        assert!((d.get(1, 2) - 0.75).abs() < 1e-12);
        assert_eq!(d.get(2, 1), 0.0);
        d.set(1, 2, 0.0);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "Definition 2.2")]
    fn rejects_diagonal() {
        Demand::new().set(3, 3, 1.0);
    }

    #[test]
    fn size_and_support() {
        let d = Demand::from_pairs(&[(0, 1), (2, 3), (0, 1)]);
        assert_eq!(d.size(), 3.0);
        assert_eq!(d.support(), vec![(0, 1), (2, 3)]);
        assert!(d.is_integral());
        assert!(!d.is_zero_one()); // (0,1) has weight 2
    }

    #[test]
    fn permutation_detection() {
        let d = Demand::from_pairs(&[(0, 1), (1, 2), (2, 0)]);
        assert!(d.is_permutation());
        let d2 = Demand::from_pairs(&[(0, 1), (0, 2)]);
        assert!(!d2.is_permutation(), "source 0 repeats");
        let d3 = Demand::from_pairs(&[(0, 1), (2, 1)]);
        assert!(!d3.is_permutation(), "target 1 repeats");
    }

    #[test]
    fn arithmetic() {
        let a = Demand::from_pairs(&[(0, 1)]);
        let b = Demand::from_pairs(&[(0, 1), (1, 2)]);
        let sum = a.plus(&b);
        assert_eq!(sum.get(0, 1), 2.0);
        assert_eq!(sum.get(1, 2), 1.0);
        let diff = b.minus_clamped(&a);
        assert_eq!(diff.get(0, 1), 0.0);
        assert_eq!(diff.get(1, 2), 1.0);
        let sc = b.scaled(2.5);
        assert_eq!(sc.get(1, 2), 2.5);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let d = Demand::random_permutation(20, &mut rng);
            assert!(d.is_permutation());
            assert!(d.size() <= 20.0);
        }
    }

    #[test]
    fn hypercube_permutations() {
        let c = Demand::hypercube_complement(3);
        assert!(c.is_permutation());
        assert_eq!(c.size(), 8.0);

        let r = Demand::hypercube_bit_reversal(4);
        assert!(r.is_permutation());
        // Palindromic labels are fixed points: for dim 4 there are 4.
        assert_eq!(r.size(), 12.0);

        let t = Demand::hypercube_transpose(4);
        assert!(t.is_permutation());
        assert_eq!(t.get(0b0001, 0b0100), 1.0);
    }

    #[test]
    fn filtered_keeps_predicate() {
        let d = Demand::from_pairs(&[(0, 1), (5, 2), (3, 4)]);
        let f = d.filtered(|s, _, _| s < 4);
        assert_eq!(f.support(), vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn from_iterator_accumulates() {
        let d: Demand = vec![((0u32, 1u32), 1.0), ((0, 1), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(d.get(0, 1), 3.0);
    }
}
