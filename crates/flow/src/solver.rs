//! The workspace's single min-congestion solver core.
//!
//! Two uses in the reproduction:
//!
//! 1. **Stage-4 rate adaptation** (Definition 5.1): given the sparse path
//!    system `P` and the revealed demand, compute
//!    `cong_R(P, d) = min_{R on P} cong(R, d)` — a packing LP over the
//!    candidate paths.
//! 2. **Offline OPT** (`opt_{G,R}(d)`, Section 4): the same LP over *all*
//!    simple paths (optionally failure-masked), solved with a
//!    shortest-path (column-generation) oracle.
//!
//! Everything is one staged-smoothing Frank–Wolfe loop on the softmax
//! (log-sum-exp) smoothing of the max-congestion objective, driven by a
//! pluggable [`PathOracle`] (see [`crate::oracle`]). What used to be
//! separate entry points — restricted, unrestricted, failure-masked,
//! warm-started — are all configurations of the one [`Solver`]:
//!
//! * the **oracle** picks the path space (candidate sets, all paths, all
//!   paths under an edge mask);
//! * the **carried state** picks cold vs warm: a fresh [`Solver`] solves
//!   from the min-hop initialization, a kept one restarts every
//!   [`Solver::resolve`] from the previous optimum ([`DemandDelta`]
//!   describes how the demand moved);
//! * [`SolveOptions`] picks the certified accuracy.
//!
//! The cold convenience wrappers ([`min_congestion`],
//! [`min_congestion_restricted`], [`min_congestion_unrestricted`],
//! [`min_congestion_masked`]) construct a one-shot `Solver` internally —
//! there is no second loop.
//!
//! Every run produces a *dual certificate*: for any nonnegative edge
//! weights `w`,
//!
//! ```text
//! OPT >= sum_{s,t} d(s,t) * min_{p in paths(s,t)} w(p) / sum_e w_e ,
//! ```
//!
//! because a congestion-λ routing satisfies
//! `sum_e w_e * load_e <= λ * sum_e w_e` while every unit of demand pays
//! at least the min-weight path. The solver reports the best such bound
//! seen — and whether the target gap was actually certified
//! ([`MinCongSolution::converged`]) — so callers can verify the
//! optimality gap of every number we report. [`SolverStats`] additionally
//! reports where the time went (oracle calls vs loop) and how the staged
//! smoothing progressed.
//!
//! Pairs the oracle cannot route at all (a failure sweep can legitimately
//! disconnect a demanded pair) are dropped at initialization and their
//! demand mass reported as [`MinCongSolution::stranded`] instead of
//! panicking mid-solve. The check runs where pairs enter the solve:
//! carried warm state is assumed routable by the oracle it resolves
//! against (see [`Solver::resolve`] for the exact contract).
//!
//! Internally the solver works on the workspace's shared representation
//! layer: edge loads accumulate in a dense [`EdgeLoads`], and every
//! discovered path is interned into the solver's [`PathStore`] so path
//! identity is a `Copy`-able [`PathId`] comparison instead of an
//! edge-vector scan. Owned [`Path`]s only appear at the boundary, in the
//! returned [`Routing`].
//!
//! # Examples
//!
//! Warm-started incremental re-solves for a drifting demand:
//!
//! ```
//! use ssor_flow::oracle::AllPathsOracle;
//! use ssor_flow::solver::{DemandDelta, Solver};
//! use ssor_flow::{Demand, SolveOptions};
//! use ssor_graph::generators;
//!
//! let g = generators::ring(6);
//! let opts = SolveOptions::with_eps(0.05);
//! let mut oracle = AllPathsOracle::new(&g);
//! let mut warm = Solver::new(&g);
//! let d = Demand::from_pairs(&[(0, 3)]);
//! let first = warm.resolve(&g, DemandDelta::Replace(d.clone()), &mut oracle, &opts);
//! assert!((first.congestion - 0.5).abs() < 0.05, "splits both ways");
//! // A 10% demand bump re-solves in very few iterations.
//! let again = warm.resolve(&g, DemandDelta::Scale(1.1), &mut oracle, &opts);
//! assert!((again.congestion - 0.55).abs() < 0.06);
//! assert!(again.iterations <= first.iterations);
//! ```

use crate::candidates::Candidates;
use crate::demand::Demand;
use crate::oracle::{AllPathsOracle, CandidateOracle, PathOracle};
use crate::routing::Routing;
use ssor_graph::{EdgeId, EdgeLoads, Graph, Path, PathId, PathStore, VertexId};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-pair weights at or below this fraction of the pair's probability
/// mass are dropped when a routing is materialized. Each pair's weights
/// sum to 1 and the solver normalizes demands to unit size internally
/// (see [`Solver::resolve`]), so this threshold — like every other solver
/// tolerance — is *relative* to the demand's scale, never absolute flow.
const WEIGHT_PRUNE: f64 = 1e-15;

/// Line-search steps at or below this count as "no progress at the
/// current smoothing". `gamma` is a convex-combination coefficient in
/// `[0, 1]` — dimensionless — so the cutoff is scale-free by
/// construction.
const GAMMA_MIN: f64 = 1e-12;

/// Options for the Frank–Wolfe solver.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Target multiplicative optimality gap (stop when `gap <= 1 + eps`).
    pub eps: f64,
    /// Hard cap on iterations. Solves that hit it come back with
    /// `converged == false`.
    pub max_iters: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            eps: 0.05,
            max_iters: 600,
        }
    }
}

impl SolveOptions {
    /// Preset with a custom gap target.
    pub fn with_eps(eps: f64) -> Self {
        SolveOptions {
            eps,
            ..Default::default()
        }
    }
}

/// Iterations spent at one smoothing stage (see [`SolverStats::stages`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageIters {
    /// The stage's smoothing accuracy `eps` (softmax error budget as a
    /// fraction of the current congestion).
    pub eps: f64,
    /// Frank–Wolfe iterations performed at this stage.
    pub iterations: usize,
}

/// Where a solve spent its work: iteration counts per smoothing stage and
/// the oracle's share of the wall-clock.
///
/// The oracle is the solver's embarrassingly parallel layer (the
/// per-source Dijkstra fan-out in `AllPathsOracle`), so `oracle_share`
/// bounds how much a multi-core run can gain — these numbers make solver
/// speedups measurable instead of anecdotal (see the `a2_solver_ablation`
/// bench bin).
#[derive(Debug, Clone, Default)]
pub struct SolverStats {
    /// Total Frank–Wolfe iterations.
    pub iterations: usize,
    /// Oracle batch calls (one per iteration plus one per cold/fresh
    /// initialization).
    pub oracle_calls: usize,
    /// Wall-clock spent inside oracle calls.
    pub oracle_wall: Duration,
    /// Wall-clock of the whole solve.
    pub total_wall: Duration,
    /// Iterations per smoothing stage, in the order the stages ran;
    /// `eps` only ever halves, so entries sharpen strictly.
    pub stages: Vec<StageIters>,
}

impl SolverStats {
    /// Fraction of the solve's wall-clock spent in the oracle
    /// (`0.0` when the solve was too fast to measure).
    pub fn oracle_share(&self) -> f64 {
        let total = self.total_wall.as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.oracle_wall.as_secs_f64() / total
        }
    }
}

/// Accumulates [`SolverStats`] across the init call and the loop.
struct StatsAcc {
    started: Instant,
    oracle_calls: usize,
    oracle_wall: Duration,
    stages: Vec<StageIters>,
}

impl StatsAcc {
    fn new() -> StatsAcc {
        StatsAcc {
            // Diagnostics-only wall clock: feeds SolverStats, which the
            // report layer keeps out of the deterministic comparison
            // surface. lint: allow(wall_clock)
            started: Instant::now(),
            oracle_calls: 0,
            oracle_wall: Duration::ZERO,
            stages: Vec::new(),
        }
    }

    /// Times one oracle batch call.
    fn time_oracle<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now(); // diagnostics-only oracle timing; lint: allow(wall_clock)
        let out = f();
        self.oracle_wall += t0.elapsed();
        self.oracle_calls += 1;
        out
    }

    /// Counts one iteration at smoothing stage `eps`.
    fn count_stage_iter(&mut self, eps: f64) {
        match self.stages.last_mut() {
            Some(last) if last.eps == eps => last.iterations += 1,
            _ => self.stages.push(StageIters { eps, iterations: 1 }),
        }
    }

    fn finish(self, iterations: usize) -> SolverStats {
        SolverStats {
            iterations,
            oracle_calls: self.oracle_calls,
            oracle_wall: self.oracle_wall,
            total_wall: self.started.elapsed(),
            stages: self.stages,
        }
    }
}

/// Result of a min-congestion solve.
#[derive(Debug, Clone)]
pub struct MinCongSolution {
    /// The (fractional) routing achieving `congestion`.
    pub routing: Routing,
    /// Primal value: max edge load of `routing` on the demand.
    pub congestion: f64,
    /// Best dual lower bound on the optimum over the oracle's path space.
    pub lower_bound: f64,
    /// Frank–Wolfe iterations performed.
    pub iterations: usize,
    /// Whether the solve stopped because the certified gap reached
    /// `1 + eps` (or the congestion was trivially zero). `false` means
    /// the solve was iteration-capped or stalled at the accuracy floor —
    /// the numbers are still valid bounds, but the target gap is not
    /// certified.
    pub converged: bool,
    /// Demand mass of pairs the oracle could not route at all (no
    /// candidate path, or disconnected through usable edges), in the
    /// demand's original units. Such pairs are dropped from the solve —
    /// `congestion` and `lower_bound` describe the routed remainder —
    /// and listed in `dropped_pairs`.
    pub stranded: f64,
    /// The dropped pairs, in demand-support order (empty normally).
    pub dropped_pairs: Vec<(VertexId, VertexId)>,
    /// Where the solve spent its work.
    pub stats: SolverStats,
}

/// Multiplicative gap `congestion / lower_bound` with the degenerate
/// conventions shared by [`MinCongSolution::gap`] and [`Solver::gap`]:
/// `1.0` when both are zero (trivially optimal), `inf` when only the
/// bound is.
fn gap_of(congestion: f64, lower_bound: f64) -> f64 {
    if lower_bound <= 0.0 {
        if congestion <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        congestion / lower_bound
    }
}

impl MinCongSolution {
    /// Multiplicative optimality gap `congestion / lower_bound`
    /// (`1.0` means provably optimal; `inf` if the bound is zero).
    pub fn gap(&self) -> f64 {
        gap_of(self.congestion, self.lower_bound)
    }
}

/// How the demand changes between two [`Solver::resolve`] calls.
#[derive(Debug, Clone)]
pub enum DemandDelta {
    /// Replace the demand wholesale (the demand-stream case: each step
    /// reveals a fresh traffic snapshot).
    Replace(Demand),
    /// Scale the current demand by a positive finite factor.
    Scale(f64),
    /// Set individual pair entries (`0` removes a pair), leaving the rest
    /// of the demand untouched.
    Set(Vec<((VertexId, VertexId), f64)>),
}

/// Per-pair convex combination over discovered paths (interned in the
/// solver's shared [`PathStore`]; membership is an id scan, never an
/// edge-vector comparison).
struct PairState {
    pair: (VertexId, VertexId),
    /// The pair's demand, normalized by the total demand size.
    demand: f64,
    ids: Vec<PathId>,
    weights: Vec<f64>,
}

impl PairState {
    fn ensure(&mut self, id: PathId) -> usize {
        if let Some(i) = self.ids.iter().position(|&x| x == id) {
            i
        } else {
            self.ids.push(id);
            self.weights.push(0.0);
            self.ids.len() - 1
        }
    }
}

/// Softmax value `max + ln(sum exp(beta*(load - max)))/beta` of edge loads.
fn softmax(loads: &[f64], beta: f64) -> f64 {
    let mx = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let s: f64 = loads.iter().map(|&l| ((l - mx) * beta).exp()).sum();
    mx + s.ln() / beta
}

/// Materializes the per-pair convex combinations into a [`Routing`],
/// dropping weights at or below [`WEIGHT_PRUNE`].
fn assemble_routing(states: &[PairState], store: &PathStore) -> Routing {
    let mut routing = Routing::new();
    for st in states {
        let dist: Vec<(Path, f64)> = st
            .ids
            .iter()
            .zip(st.weights.iter())
            .filter(|(_, w)| **w > WEIGHT_PRUNE)
            .map(|(&id, &w)| (store.materialize(id), w))
            .collect();
        routing.set_distribution(st.pair.0, st.pair.1, dist);
    }
    routing
}

/// The workspace's one staged-smoothing Frank–Wolfe loop.
///
/// `states` holds the starting per-pair convex combinations (weights
/// summing to 1 per pair, demands normalized to unit total size) and
/// `loads` the matching edge-load accumulation. `stage_eps0` is the
/// initial smoothing stage; every entry point starts coarse (0.5) — from
/// a warm near-optimal start the no-progress line-search path cascades
/// the smoothing to the accuracy floor in a few cheap iterations, so no
/// special schedule is needed.
///
/// Every routed pair is reachable (the caller dropped stranded pairs at
/// initialization), and reachability under the finite positive weights
/// this loop produces is weight-independent — so an oracle `None` here
/// is a contract violation and panics.
///
/// Returns the best dual lower bound seen (at unit demand scale), the
/// number of iterations performed, and whether the target gap was
/// certified.
#[allow(clippy::too_many_arguments)]
fn frank_wolfe(
    m: usize,
    states: &mut [PairState],
    loads: &mut EdgeLoads,
    store: &mut PathStore,
    oracle: &mut dyn PathOracle,
    opts: &SolveOptions,
    stage_eps0: f64,
    mut lower_bound: f64,
    acc: &mut StatsAcc,
) -> (f64, usize, bool) {
    let pairs: Vec<(VertexId, VertexId)> = states.iter().map(|st| st.pair).collect();
    let demands: Vec<f64> = states.iter().map(|st| st.demand).collect();

    // Staged smoothing: start with a coarse softmax (fast global progress)
    // and sharpen whenever the primal stalls, down to the target accuracy.
    // A sharp softmax from the start makes Frank–Wolfe crawl: the gradient
    // concentrates on the single most-congested edge and only one path
    // shifts per iteration.
    let eps_floor = (opts.eps * 0.25).min(0.5);
    let mut stage_eps = stage_eps0.clamp(eps_floor, 0.5);
    let mut stall = 0usize;
    let mut prev_ub = f64::INFINITY;
    let mut converged = false;

    let mut loads_y = EdgeLoads::zeros(m);
    let mut iterations = 0;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        let ub = loads.max();
        if ub <= 0.0 {
            converged = true;
            break;
        }
        // Stall detection: sharpen the smoothing when the primal stops
        // improving at the current stage.
        if ub > prev_ub * 0.9995 {
            stall += 1;
            if stall >= 15 && stage_eps > eps_floor {
                stage_eps *= 0.5;
                stall = 0;
            }
        } else {
            stall = 0;
        }
        prev_ub = ub;
        acc.count_stage_iter(stage_eps);
        // Smoothing: approximation error ln(m)/beta <= stage_eps/4 * ub.
        let beta = (m as f64).ln().max(1.0) / (0.25 * stage_eps * ub);
        // Softmax gradient weights (scaled to max 1 for numerical safety).
        let mx = ub;
        let w: Vec<f64> = loads.iter().map(|l| ((l - mx) * beta).exp()).collect();
        let wsum: f64 = w.iter().sum();

        // Best response under w.
        let best = acc.time_oracle(|| oracle.best_paths(&pairs, &w, store));
        let best: Vec<(PathId, f64)> = best
            .into_iter()
            .map(|r| r.expect("oracle lost a previously routed pair"))
            .collect();

        // Dual certificate from these weights.
        let num: f64 = best
            .iter()
            .zip(demands.iter())
            .map(|((_, c), dem)| c * dem)
            .sum();
        let certificate = num / wsum;
        // Sentinel (debug builds): a NaN/∞ certificate means a poisoned
        // weight or an overflowed softmax slipped past the clamps — fail
        // at the dual update, not when a competitive ratio looks wrong.
        debug_assert!(
            certificate.is_finite(),
            "non-finite dual certificate {certificate} (num={num}, wsum={wsum})"
        );
        lower_bound = lower_bound.max(certificate);

        if ub <= (1.0 + opts.eps) * lower_bound {
            converged = true;
            break;
        }

        // Loads of the pure best-response routing.
        loads_y.clear();
        for (&(id, _), dem) in best.iter().zip(demands.iter()) {
            loads_y.add_path(store, id, *dem);
        }

        // Exact line search on the softmax potential (convex in gamma).
        let phi = |gamma: f64| -> f64 {
            let mixed: Vec<f64> = loads
                .iter()
                .zip(loads_y.iter())
                .map(|(a, b)| (1.0 - gamma) * a + gamma * b)
                .collect();
            softmax(&mixed, beta)
        };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        for _ in 0..30 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if phi(m1) <= phi(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        let gamma = 0.5 * (lo + hi);
        if gamma <= GAMMA_MIN {
            // No progress along this direction at the current smoothing:
            // sharpen if we can, otherwise we are done (without a
            // certificate for the target gap).
            if stage_eps > eps_floor {
                stage_eps *= 0.5;
                stall = 0;
                continue;
            }
            break;
        }

        // Apply the update to per-pair weights and the aggregate loads.
        for st in states.iter_mut() {
            for wgt in st.weights.iter_mut() {
                *wgt *= 1.0 - gamma;
            }
        }
        for (st, &(id, _)) in states.iter_mut().zip(best.iter()) {
            let i = st.ensure(id);
            st.weights[i] += gamma;
        }
        for (a, b) in loads.as_mut_slice().iter_mut().zip(loads_y.as_slice()) {
            *a = (1.0 - gamma) * *a + gamma * b;
        }
    }

    (lower_bound, iterations, converged)
}

/// The min-congestion solver core, with warm-start state as data.
///
/// A `Solver` owns the interned [`PathStore`] arena plus, per pair ever
/// routed, the convex combination over that pair's discovered paths
/// (weights summing to 1). A fresh `Solver` solves cold (min-hop
/// initialization); keeping it alive across [`Solver::resolve`] calls
/// warm-starts every subsequent solve from the previous optimum — the
/// demand-stream and failure-sweep runners in `ssor-engine` rely on
/// this. Pairs that leave the demand keep their distribution: a pair
/// that returns (bursty ON/OFF traffic) warm-starts too.
///
/// Link failures compose with warm starts through
/// [`Solver::invalidate_edges`]: paths crossing dead edges are dropped
/// from the carried state (per-pair mass renormalizes onto the
/// survivors) before the next [`Solver::resolve`].
#[derive(Debug, Clone)]
pub struct Solver {
    store: PathStore,
    /// Per-pair `(path ids, weights)`; weights sum to 1 per pair.
    choices: BTreeMap<(VertexId, VertexId), (Vec<PathId>, Vec<f64>)>,
    demand: Demand,
    m: usize,
    congestion: f64,
    lower_bound: f64,
    iterations: usize,
    converged: bool,
    stranded: f64,
}

impl Solver {
    /// An empty solver for graphs with `g.m()` edges (no demand routed
    /// yet). The first [`Solver::resolve`] is a cold solve.
    pub fn new(g: &Graph) -> Solver {
        Solver {
            store: PathStore::new(),
            choices: BTreeMap::new(),
            demand: Demand::new(),
            m: g.m(),
            congestion: 0.0,
            lower_bound: 0.0,
            iterations: 0,
            converged: true,
            stranded: 0.0,
        }
    }

    /// Cold-solves `d` and returns the solver ready for incremental
    /// re-solves (convenience over [`Solver::new`] + [`Solver::resolve`]).
    pub fn solve(
        g: &Graph,
        d: &Demand,
        oracle: &mut dyn PathOracle,
        opts: &SolveOptions,
    ) -> Solver {
        let mut s = Solver::new(g);
        s.resolve(g, DemandDelta::Replace(d.clone()), oracle, opts);
        s
    }

    /// The demand of the last solve.
    pub fn demand(&self) -> &Demand {
        &self.demand
    }

    /// Congestion achieved by the last solve.
    pub fn congestion(&self) -> f64 {
        self.congestion
    }

    /// Certified dual lower bound of the last solve.
    pub fn lower_bound(&self) -> f64 {
        self.lower_bound
    }

    /// Frank–Wolfe iterations the last solve took.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the last solve certified its target gap (see
    /// [`MinCongSolution::converged`]).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Demand mass the last solve dropped as unroutable (see
    /// [`MinCongSolution::stranded`]).
    pub fn stranded(&self) -> f64 {
        self.stranded
    }

    /// Multiplicative optimality gap of the last solve (see
    /// [`MinCongSolution::gap`]).
    pub fn gap(&self) -> f64 {
        gap_of(self.congestion, self.lower_bound)
    }

    /// Applies `delta` to the demand and re-solves, warm-starting from
    /// the carried per-pair distributions. Pairs new to the demand are
    /// initialized from the oracle's min-hop best response; pairs that
    /// left contribute nothing but keep their state for a possible
    /// return. Fresh pairs the oracle cannot route at all are dropped
    /// and reported as stranded (see [`MinCongSolution::stranded`]) —
    /// in failure drills, compare that mass against the coverage you
    /// expected instead of aborting the sweep.
    ///
    /// Stranding applies at *initialization*: a pair with carried state
    /// is assumed routable by this solve's oracle, because its state
    /// was discovered through a compatible oracle (after failures, call
    /// [`Solver::invalidate_edges`] first — pairs whose every carried
    /// path died are cleared back to fresh and go through the stranding
    /// check). Handing `resolve` an oracle that cannot route a pair
    /// whose carried state you kept is a contract violation and panics
    /// mid-solve rather than silently misreporting.
    ///
    /// When *no* demanded pair carries state (a cold solve), the min-hop
    /// response additionally seeds the dual bound with the all-ones
    /// weight certificate, exactly like the one-shot entry points — a
    /// fresh `Solver` and [`min_congestion`] are the same computation,
    /// bit for bit.
    ///
    /// Returns the full per-step solution (routing materialized at the
    /// boundary, like the one-shot entry points).
    ///
    /// # Panics
    ///
    /// Panics if a [`DemandDelta::Scale`] factor is negative or
    /// non-finite, if the demand size overflows `f64`, or if the oracle
    /// cannot route a pair with carried state (see above).
    pub fn resolve(
        &mut self,
        g: &Graph,
        delta: DemandDelta,
        oracle: &mut dyn PathOracle,
        opts: &SolveOptions,
    ) -> MinCongSolution {
        let mut acc = StatsAcc::new();
        match delta {
            DemandDelta::Replace(d) => self.demand = d,
            DemandDelta::Scale(c) => self.demand = self.demand.scaled(c),
            DemandDelta::Set(entries) => {
                for ((s, t), w) in entries {
                    self.demand.set(s, t, w);
                }
            }
        }
        let pairs = self.demand.support();
        if pairs.is_empty() {
            return self.finish_trivial(0.0, Vec::new(), acc);
        }
        let scale = self.demand.size();
        assert!(scale.is_finite(), "demand size must be finite, got {scale}");

        // Build the per-pair states: carried distributions where we have
        // them, oracle-initialized fresh states for new pairs.
        let mut states: Vec<PairState> = Vec::with_capacity(pairs.len());
        let mut fresh: Vec<usize> = Vec::new();
        for &(s, t) in &pairs {
            let demand = self.demand.get(s, t) / scale;
            match self.choices.get(&(s, t)) {
                Some((ids, weights)) if !ids.is_empty() => states.push(PairState {
                    pair: (s, t),
                    demand,
                    ids: ids.clone(),
                    weights: weights.clone(),
                }),
                _ => {
                    fresh.push(states.len());
                    states.push(PairState {
                        pair: (s, t),
                        demand,
                        ids: Vec::new(),
                        weights: Vec::new(),
                    });
                }
            }
        }
        let cold = fresh.len() == states.len();
        let mut ones_bound = 0.0;
        if !fresh.is_empty() {
            let ones = vec![1.0; self.m];
            let fresh_pairs: Vec<(VertexId, VertexId)> =
                fresh.iter().map(|&i| states[i].pair).collect();
            let store = &mut self.store;
            let first = acc.time_oracle(|| oracle.best_paths(&fresh_pairs, &ones, store));
            for (&i, found) in fresh.iter().zip(first.iter()) {
                if let Some((id, _)) = found {
                    states[i].ids.push(*id);
                    states[i].weights.push(1.0);
                }
            }
            if cold {
                // Dual bound from the all-ones weights, over the pairs
                // actually routed.
                let num: f64 = fresh
                    .iter()
                    .zip(first.iter())
                    .filter_map(|(&i, found)| found.map(|(_, c)| c * states[i].demand))
                    .sum();
                ones_bound = num / self.m as f64;
            }
        }

        // Drop the pairs the oracle could not route at all; their demand
        // mass is reported as stranded rather than panicking mid-solve.
        let mut stranded = 0.0;
        let mut dropped_pairs: Vec<(VertexId, VertexId)> = Vec::new();
        states.retain(|st| {
            if st.ids.is_empty() {
                stranded += self.demand.get(st.pair.0, st.pair.1);
                dropped_pairs.push(st.pair);
                false
            } else {
                true
            }
        });
        if states.is_empty() {
            // Everything stranded: the LP over the (empty) routed
            // remainder is trivially solved.
            return self.finish_trivial(stranded, dropped_pairs, acc);
        }

        // Re-accumulate the loads of the starting point (normalized).
        let mut loads = EdgeLoads::zeros(self.m);
        for st in &states {
            for (&id, &w) in st.ids.iter().zip(st.weights.iter()) {
                loads.add_path(&self.store, id, w * st.demand);
            }
        }

        // Both cold and warm solves start at the coarse smoothing stage.
        // From a near-optimal warm point the line search immediately finds
        // no coarse-stage progress, which cascades the smoothing down to
        // the accuracy floor in O(log(1/eps)) cheap iterations and lets
        // the sharp dual certificate stop the loop — starting sharp
        // instead makes Frank–Wolfe crawl even from a warm point (the
        // gradient pins to the single most-congested edge).
        let (lower_bound, iterations, converged) = frank_wolfe(
            self.m,
            &mut states,
            &mut loads,
            &mut self.store,
            oracle,
            opts,
            0.5,
            ones_bound,
            &mut acc,
        );

        // Persist the updated distributions (pruning negligible weights
        // so state does not grow without bound across a long stream).
        for st in &states {
            let mut ids = Vec::with_capacity(st.ids.len());
            let mut weights = Vec::with_capacity(st.ids.len());
            for (&id, &w) in st.ids.iter().zip(st.weights.iter()) {
                if w > WEIGHT_PRUNE {
                    ids.push(id);
                    weights.push(w);
                }
            }
            self.choices.insert(st.pair, (ids, weights));
        }

        let routing = assemble_routing(&states, &self.store);
        let congestion = routing.congestion(g, &self.demand);
        self.congestion = congestion;
        self.lower_bound = lower_bound * scale;
        self.iterations = iterations;
        self.converged = converged;
        self.stranded = stranded;
        MinCongSolution {
            routing,
            congestion,
            lower_bound: self.lower_bound,
            iterations,
            converged,
            stranded,
            dropped_pairs,
            stats: acc.finish(iterations),
        }
    }

    /// The zero-work solution (empty demand, or everything stranded).
    fn finish_trivial(
        &mut self,
        stranded: f64,
        dropped_pairs: Vec<(VertexId, VertexId)>,
        acc: StatsAcc,
    ) -> MinCongSolution {
        self.congestion = 0.0;
        self.lower_bound = 0.0;
        self.iterations = 0;
        self.converged = true;
        self.stranded = stranded;
        MinCongSolution {
            routing: Routing::new(),
            congestion: 0.0,
            lower_bound: 0.0,
            iterations: 0,
            converged: true,
            stranded,
            dropped_pairs,
            stats: acc.finish(0),
        }
    }

    /// Drops every carried path that crosses one of the `dead` edges,
    /// renormalizing each affected pair's remaining mass onto its
    /// surviving paths; pairs left without survivors are cleared (the
    /// next [`Solver::resolve`] re-initializes them from the oracle).
    ///
    /// Returns the number of dropped paths. The demand is untouched —
    /// restrict it separately if pairs lost coverage in the oracle too.
    pub fn invalidate_edges(&mut self, dead: &[EdgeId]) -> usize {
        let store = &self.store;
        let mut removed = 0usize;
        self.choices.retain(|_, (ids, weights)| {
            let before = ids.len();
            let mut keep_ids = Vec::with_capacity(before);
            let mut keep_w = Vec::with_capacity(before);
            for (&id, &w) in ids.iter().zip(weights.iter()) {
                if !dead.iter().any(|&e| store.contains_edge(id, e)) {
                    keep_ids.push(id);
                    keep_w.push(w);
                }
            }
            removed += before - keep_ids.len();
            let total: f64 = keep_w.iter().sum();
            if keep_ids.is_empty() || total <= 0.0 {
                return false;
            }
            for w in keep_w.iter_mut() {
                *w /= total;
            }
            *ids = keep_ids;
            *weights = keep_w;
            true
        });
        removed
    }

    /// Materializes the current per-pair distributions (demanded pairs
    /// only) as a [`Routing`].
    pub fn routing(&self) -> Routing {
        let mut r = Routing::new();
        for (s, t) in self.demand.support() {
            if let Some((ids, weights)) = self.choices.get(&(s, t)) {
                let dist: Vec<(Path, f64)> = ids
                    .iter()
                    .zip(weights.iter())
                    .map(|(&id, &w)| (self.store.materialize(id), w))
                    .collect();
                if !dist.is_empty() {
                    r.set_distribution(s, t, dist);
                }
            }
        }
        r
    }
}

/// Solves `min max_e load_e` over routings whose per-pair paths come from
/// `oracle`, routing the full demand `d` on graph `g` — the one-shot
/// (cold) form of [`Solver::resolve`].
///
/// Returns the empty solution with congestion 0 for an empty demand.
///
/// Internally the demand is normalized to unit size (`siz(d) = 1`) and
/// the bounds are scaled back afterwards, so every solver tolerance is
/// relative to the demand's scale: solving `c * d` yields `c` times the
/// congestion and lower bound of `d` (up to floating-point roundoff) for
/// any positive finite `c`, including extreme scales where the smoothing
/// temperature would otherwise overflow.
///
/// Pairs the oracle cannot route are dropped and reported as stranded
/// (see [`MinCongSolution::stranded`]).
///
/// # Panics
///
/// Panics if the demand's total size overflows `f64`.
pub fn min_congestion(
    g: &Graph,
    d: &Demand,
    oracle: &mut dyn PathOracle,
    opts: &SolveOptions,
) -> MinCongSolution {
    Solver::new(g).resolve(g, DemandDelta::Replace(d.clone()), oracle, opts)
}

/// Stage-4 rate adaptation: `cong_R(P, d)` over the candidate sets
/// (Definition 5.1). `candidates` is the interned view a `PathSystem`
/// exposes through its `candidates()` method. Demand pairs without
/// candidates are reported as stranded.
pub fn min_congestion_restricted(
    g: &Graph,
    d: &Demand,
    candidates: Candidates<'_>,
    opts: &SolveOptions,
) -> MinCongSolution {
    let mut oracle = CandidateOracle::new(candidates);
    min_congestion(g, d, &mut oracle, opts)
}

/// Offline fractional optimum `opt_{G,R}(d)` over all paths (Section 4).
pub fn min_congestion_unrestricted(g: &Graph, d: &Demand, opts: &SolveOptions) -> MinCongSolution {
    let mut oracle = AllPathsOracle::new(g);
    min_congestion(g, d, &mut oracle, opts)
}

/// Offline fractional optimum on a failure-masked topology: like
/// [`min_congestion_unrestricted`], but only edges marked usable may
/// carry flow. `usable` is the combined mask a
/// `ssor_graph::SubTopology` exports; the graph itself is untouched, so
/// the resulting loads and routing use the base graph's edge ids. Pairs
/// disconnected by the mask are dropped and reported as stranded.
///
/// # Panics
///
/// Panics if `usable.len() != g.m()`.
pub fn min_congestion_masked(
    g: &Graph,
    d: &Demand,
    usable: &[bool],
    opts: &SolveOptions,
) -> MinCongSolution {
    let mut oracle = AllPathsOracle::masked(g, usable);
    min_congestion(g, d, &mut oracle, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use ssor_graph::generators;

    fn opts() -> SolveOptions {
        SolveOptions {
            eps: 0.02,
            max_iters: 2000,
        }
    }

    #[test]
    fn empty_demand_is_trivial() {
        let g = generators::ring(4);
        let sol = min_congestion_unrestricted(&g, &Demand::new(), &opts());
        assert_eq!(sol.congestion, 0.0);
        assert_eq!(sol.iterations, 0);
        assert!(sol.converged);
        assert_eq!(sol.stranded, 0.0);
    }

    #[test]
    fn single_pair_on_ring_splits_both_ways() {
        // Ring of 6: one unit 0 -> 3 can split into two disjoint 3-hop
        // paths, halving congestion.
        let g = generators::ring(6);
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(
            (sol.congestion - 0.5).abs() < 0.02,
            "congestion = {}",
            sol.congestion
        );
        assert!(sol.gap() <= 1.1, "gap = {}", sol.gap());
        assert!(sol.routing.is_valid(&g));
    }

    #[test]
    fn parallel_edges_split_flow() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let d = Demand::from_pairs(&[(0, 1)]).scaled(3.0);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(
            (sol.congestion - 1.0).abs() < 0.05,
            "congestion = {}",
            sol.congestion
        );
    }

    #[test]
    fn restricted_single_candidate_is_forced() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_restricted(&g, &d, cands.as_candidates(), &opts());
        assert!((sol.congestion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn restricted_two_candidates_split() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        cands.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_restricted(&g, &d, cands.as_candidates(), &opts());
        assert!(
            (sol.congestion - 0.5).abs() < 0.02,
            "congestion = {}",
            sol.congestion
        );
    }

    #[test]
    fn lower_bound_never_exceeds_primal() {
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (2, 6), (1, 7), (3, 5)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(sol.lower_bound <= sol.congestion + 1e-9);
        assert!(sol.gap() < 1.25, "gap = {}", sol.gap());
    }

    #[test]
    fn congestion_matches_flow_lower_bound_on_star() {
        // Star: all paths go through the center; each pair uses its two
        // leaf edges once, so the unique routing has congestion 1.
        let g = generators::star(6);
        let d = Demand::from_pairs(&[(1, 2), (3, 4), (5, 6)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!((sol.congestion - 1.0).abs() < 1e-6);
        assert!(sol.gap() < 1.05);
    }

    #[test]
    fn many_commodities_on_hypercube_nearly_optimal() {
        let g = generators::hypercube(4);
        let d = Demand::hypercube_complement(4);
        let sol = min_congestion_unrestricted(
            &g,
            &d,
            &SolveOptions {
                eps: 0.1,
                max_iters: 3000,
            },
        );
        // Complement demand on Q4: every pair at distance 4; total flow
        // >= 16*4 = 64 over 32 edges => congestion >= 2. An optimal routing
        // achieves exactly 2 (edge-disjoint dimension-ordered batches).
        assert!(sol.congestion < 2.3, "congestion = {}", sol.congestion);
        assert!(sol.lower_bound >= 1.9, "lb = {}", sol.lower_bound);
    }

    #[test]
    fn masked_solve_avoids_dead_edges() {
        // Ring of 6 with one edge of the short side failed: the whole
        // 0 -> 3 unit is forced onto the surviving side.
        let g = generators::ring(6);
        let mut sub = g.sub_topology();
        sub.fail_edge(1); // the (1, 2) edge
        let d = Demand::from_pairs(&[(0, 3)]);
        let sol = min_congestion_masked(&g, &d, &sub.usable_edges(), &opts());
        assert!(
            (sol.congestion - 1.0).abs() < 1e-6,
            "congestion = {}",
            sol.congestion
        );
        let loads = sol.routing.edge_loads(&g, &d);
        assert_eq!(loads.get(1), 0.0, "no flow on the dead edge");
    }

    #[test]
    fn masked_solve_with_full_mask_matches_unrestricted() {
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (2, 6)]);
        let full = vec![true; g.m()];
        let masked = min_congestion_masked(&g, &d, &full, &opts());
        let open = min_congestion_unrestricted(&g, &d, &opts());
        assert!((masked.congestion - open.congestion).abs() < 1e-9);
    }

    #[test]
    fn masked_solve_strands_disconnected_pairs_instead_of_panicking() {
        // Ring of 4 with two opposite edges dead: (0, 2) is disconnected,
        // (1, 0) still routable. The solve drops the dead pair, reports
        // its mass, and routes the rest.
        let g = generators::ring(4);
        let mut sub = g.sub_topology();
        sub.fail_edge(0); // (0, 1)
        sub.fail_edge(2); // (2, 3)
        let mut d = Demand::new();
        d.set(0, 2, 3.0);
        d.set(1, 2, 1.0);
        let sol = min_congestion_masked(&g, &d, &sub.usable_edges(), &opts());
        assert_eq!(sol.stranded, 3.0, "the disconnected pair's mass");
        assert_eq!(sol.dropped_pairs, vec![(0, 2)]);
        assert!(
            (sol.congestion - 1.0).abs() < 1e-9,
            "(1, 2) routes its unit"
        );
        assert!(sol.routing.distribution(0, 2).is_none());
    }

    #[test]
    fn fully_stranded_solve_is_trivial_but_reported() {
        let g = generators::ring(4);
        let mut sub = g.sub_topology();
        sub.fail_edge(0);
        sub.fail_edge(2);
        let d = Demand::from_pairs(&[(0, 2)]).scaled(2.0);
        let sol = min_congestion_masked(&g, &d, &sub.usable_edges(), &opts());
        assert_eq!(sol.congestion, 0.0);
        assert_eq!(sol.stranded, 2.0);
        assert_eq!(sol.iterations, 0);
        assert!(sol.routing.is_empty());
    }

    #[test]
    fn restricted_solve_strands_uncovered_pairs() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3), (1, 4)]);
        let sol = min_congestion_restricted(&g, &d, cands.as_candidates(), &opts());
        assert_eq!(sol.stranded, 1.0);
        assert_eq!(sol.dropped_pairs, vec![(1, 4)]);
        assert!((sol.congestion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn routing_routes_full_demand() {
        let g = generators::grid(3, 4);
        let d = Demand::from_pairs(&[(0, 11), (4, 7)]).scaled(2.0);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        assert!(sol.routing.covers(&d));
        assert!(sol.routing.is_valid(&g));
        let loads = sol.routing.edge_loads(&g, &d);
        assert!(
            loads.total() >= d.size() * 3.0 - 1e-6,
            "paths are >= 3 hops here"
        );
    }

    #[test]
    fn converged_flag_distinguishes_capped_solves() {
        let g = generators::hypercube(4);
        let d = Demand::hypercube_complement(4);
        let certified = min_congestion_unrestricted(
            &g,
            &d,
            &SolveOptions {
                eps: 0.1,
                max_iters: 3000,
            },
        );
        assert!(certified.converged, "3000 iterations certify eps = 0.1");
        assert!(certified.gap() <= 1.1 + 1e-9);
        let capped = min_congestion_unrestricted(
            &g,
            &d,
            &SolveOptions {
                eps: 0.001,
                max_iters: 3,
            },
        );
        assert!(!capped.converged, "3 iterations cannot certify eps = 1e-3");
    }

    #[test]
    fn stats_account_for_oracle_calls_and_stages() {
        let g = generators::grid(4, 4);
        let d = Demand::from_pairs(&[(0, 15), (3, 12), (5, 10)]);
        let sol = min_congestion_unrestricted(&g, &d, &opts());
        let stats = &sol.stats;
        assert_eq!(stats.iterations, sol.iterations);
        // One init call plus one per iteration.
        assert_eq!(stats.oracle_calls, sol.iterations + 1);
        assert_eq!(
            stats.stages.iter().map(|s| s.iterations).sum::<usize>(),
            sol.iterations
        );
        assert!(stats.oracle_wall <= stats.total_wall);
        assert!((0.0..=1.0).contains(&stats.oracle_share()));
        // Stages sharpen monotonically within the run.
        for pair in stats.stages.windows(2) {
            assert!(pair[1].eps < pair[0].eps, "stages must sharpen");
        }
    }

    // ------------------------------------------------------------------
    // Warm-start behavior (carried Solver state).
    // ------------------------------------------------------------------

    fn warm_opts() -> SolveOptions {
        SolveOptions {
            eps: 0.05,
            max_iters: 2000,
        }
    }

    #[test]
    fn fresh_solver_matches_one_shot_entry_point_bitwise() {
        let g = generators::grid(3, 3);
        let d = Demand::from_pairs(&[(0, 8), (2, 6), (1, 7)]);
        let mut oracle = AllPathsOracle::new(&g);
        let warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        let cold = min_congestion_unrestricted(&g, &d, &warm_opts());
        assert_eq!(warm.congestion().to_bits(), cold.congestion.to_bits());
        assert_eq!(warm.lower_bound().to_bits(), cold.lower_bound.to_bits());
        assert_eq!(warm.iterations(), cold.iterations);
    }

    #[test]
    fn warm_resolve_reconverges_faster_on_drift() {
        let g = generators::grid(4, 4);
        let mut d = Demand::from_pairs(&[(0, 15), (3, 12), (5, 10), (1, 14)]);
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        let cold_iters = warm.iterations();
        // Mild drift: +5% on one pair.
        d.set(0, 15, 1.05);
        let sol = warm.resolve(
            &g,
            DemandDelta::Replace(d.clone()),
            &mut oracle,
            &warm_opts(),
        );
        assert!(
            sol.iterations <= cold_iters,
            "warm start should not regress"
        );
        // Quality stays certified.
        let cold = min_congestion_unrestricted(&g, &d, &warm_opts());
        let tol = 1.0 + warm_opts().eps + 0.02;
        assert!(sol.congestion <= cold.congestion * tol + 1e-12);
        assert!(cold.congestion <= sol.congestion * tol + 1e-12);
    }

    #[test]
    fn scale_delta_scales_congestion_linearly() {
        let g = generators::ring(6);
        let d = Demand::from_pairs(&[(0, 3)]);
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        let c1 = warm.congestion();
        warm.resolve(&g, DemandDelta::Scale(3.0), &mut oracle, &warm_opts());
        assert!((warm.congestion() - 3.0 * c1).abs() < 1e-9 * (1.0 + 3.0 * c1));
    }

    #[test]
    fn set_delta_adds_and_removes_pairs() {
        let g = generators::ring(8);
        let d = Demand::from_pairs(&[(0, 4)]);
        let mut oracle = AllPathsOracle::new(&g);
        let mut warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        // Add a pair, drop the old one.
        warm.resolve(
            &g,
            DemandDelta::Set(vec![((0, 4), 0.0), ((1, 5), 2.0)]),
            &mut oracle,
            &warm_opts(),
        );
        assert_eq!(warm.demand().support(), vec![(1, 5)]);
        assert!(warm.congestion() > 0.0);
        // Emptying the demand gives the trivial solution but keeps state.
        let empty = warm.resolve(
            &g,
            DemandDelta::Set(vec![((1, 5), 0.0)]),
            &mut oracle,
            &warm_opts(),
        );
        assert_eq!(empty.congestion, 0.0);
        assert_eq!(empty.iterations, 0);
        // The pair returns: its carried distribution warm-starts again.
        let back = warm.resolve(
            &g,
            DemandDelta::Set(vec![((1, 5), 2.0)]),
            &mut oracle,
            &warm_opts(),
        );
        assert!(back.congestion > 0.0);
    }

    #[test]
    fn invalidate_edges_moves_mass_to_survivors() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        cands.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let mut oracle = CandidateOracle::new(cands.as_candidates());
        let mut warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        assert!((warm.congestion() - 0.5).abs() < 0.05, "splits both ways");
        // Kill edge (1, 2): the clockwise path dies, all mass shifts.
        let removed = warm.invalidate_edges(&[1]);
        assert_eq!(removed, 1);
        let r = warm.routing();
        let dist = r.distribution(0, 3).expect("pair still routed");
        assert_eq!(dist.len(), 1);
        assert!((dist[0].weight - 1.0).abs() < 1e-12);
        // Re-solving against the surviving candidate set stays correct.
        let mut survivors = CandidateSet::new();
        survivors.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let mut oracle2 = CandidateOracle::new(survivors.as_candidates());
        let sol = warm.resolve(
            &g,
            DemandDelta::Replace(d.clone()),
            &mut oracle2,
            &warm_opts(),
        );
        assert!((sol.congestion - 1.0).abs() < 1e-9);
        let loads = sol.routing.edge_loads(&g, &d);
        assert_eq!(loads.get(1), 0.0, "dead edge carries nothing");
        // Matches a cold restricted solve on the survivors.
        let cold = min_congestion_restricted(&g, &d, survivors.as_candidates(), &warm_opts());
        assert!((sol.congestion - cold.congestion).abs() < 1e-9);
    }

    #[test]
    fn invalidate_all_paths_of_a_pair_forces_reinit() {
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let mut oracle = CandidateOracle::new(cands.as_candidates());
        let mut warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        warm.invalidate_edges(&[0]);
        assert!(warm.routing().is_empty(), "no survivors for the pair");
        // Resolve with an oracle that still covers the pair re-initializes.
        let mut fresh = CandidateSet::new();
        fresh.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let mut oracle2 = CandidateOracle::new(fresh.as_candidates());
        let sol = warm.resolve(&g, DemandDelta::Replace(d), &mut oracle2, &warm_opts());
        assert!((sol.congestion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_resolve_strands_pairs_the_oracle_lost() {
        // After a failure wipes a pair's candidates, re-solving against
        // the survivors strands that pair instead of panicking.
        let g = generators::ring(6);
        let mut cands = CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        cands.insert(&Path::from_vertices(&g, &[1, 2, 3, 4]).unwrap());
        let d = Demand::from_pairs(&[(0, 3), (1, 4)]);
        let mut oracle = CandidateOracle::new(cands.as_candidates());
        let mut warm = Solver::solve(&g, &d, &mut oracle, &warm_opts());
        assert_eq!(warm.stranded(), 0.0);
        // Edge (1, 2) dies: both carried paths cross it.
        warm.invalidate_edges(&[1]);
        let mut survivors = CandidateSet::new();
        survivors.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let mut oracle2 = CandidateOracle::new(survivors.as_candidates());
        let sol = warm.resolve(&g, DemandDelta::Replace(d), &mut oracle2, &warm_opts());
        assert_eq!(sol.stranded, 1.0, "(1, 4) has no surviving candidates");
        assert_eq!(sol.dropped_pairs, vec![(1, 4)]);
        assert!((sol.congestion - 1.0).abs() < 1e-9, "(0, 3) reroutes");
    }
}
