//! Flow path decomposition: turn a single-commodity edge flow into a
//! distribution over simple paths.
//!
//! Used by the electrical oblivious routing (`ssor-oblivious`), which
//! produces its `R(s, t)` as an *edge* flow (currents) and needs the
//! per-path view the paper's sampling construction consumes.

use ssor_graph::{EdgeId, Graph, Path, VertexId};

/// A signed single-commodity flow: `flow[e]` is the amount routed along
/// edge `e`, oriented from `endpoints(e).0` to `endpoints(e).1` (negative
/// means the opposite direction).
pub type EdgeFlow = Vec<f64>;

/// Net outflow of vertex `v` under `flow` (positive at the source).
pub fn net_outflow(g: &Graph, flow: &EdgeFlow, v: VertexId) -> f64 {
    let mut out = 0.0;
    for a in g.neighbors(v) {
        let (x, _) = g.endpoints(a.edge);
        let f = flow[a.edge as usize];
        // Edge stored as (x, y): +f leaves x, enters y.
        if x == v {
            out += f;
        } else {
            out -= f;
        }
    }
    out
}

/// Checks conservation: every vertex except `s` and `t` has zero net
/// outflow; `s` has `+value`, `t` has `-value` (within `tol`).
pub fn is_conserving(
    g: &Graph,
    flow: &EdgeFlow,
    s: VertexId,
    t: VertexId,
    value: f64,
    tol: f64,
) -> bool {
    g.vertices().all(|v| {
        let net = net_outflow(g, flow, v);
        let expect = if v == s {
            value
        } else if v == t {
            -value
        } else {
            0.0
        };
        (net - expect).abs() <= tol
    })
}

/// Decomposes a conserving, *acyclic* `s -> t` flow of total `value` into
/// weighted simple paths: repeatedly walk from `s` to `t` along positive
/// residual arcs, subtract the bottleneck. Cycles in the input are left
/// undecomposed (their flow simply never reaches `t`), so the returned
/// weights sum to `value` only for acyclic flows — electrical flows always
/// are.
///
/// Returns `(path, weight)` pairs with weights summing to (nearly) the
/// routed value; tiny residuals below `tol` are dropped.
///
/// # Panics
///
/// Panics if a walk exceeds `n` steps without reaching `t` with
/// meaningfully positive flow remaining — this indicates a cyclic input.
pub fn decompose(
    g: &Graph,
    mut flow: EdgeFlow,
    s: VertexId,
    t: VertexId,
    tol: f64,
) -> Vec<(Path, f64)> {
    assert_eq!(flow.len(), g.m());
    let mut out: Vec<(Path, f64)> = Vec::new();
    // Signed flow along the arc v -> other(e): positive when the stored
    // orientation leaves v.
    let arc_flow = |flow: &EdgeFlow, v: VertexId, e: EdgeId, g: &Graph| -> f64 {
        let (x, _) = g.endpoints(e);
        if x == v {
            flow[e as usize]
        } else {
            -flow[e as usize]
        }
    };
    loop {
        // Remaining outflow at s.
        let remaining = net_outflow(g, &flow, s);
        if remaining <= tol {
            break;
        }
        // Greedy walk along the largest-positive-flow arc (ties: lowest
        // edge id), which is deterministic and terminates on acyclic flow.
        let mut verts = vec![s];
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut cur = s;
        let mut bottleneck = f64::INFINITY;
        let mut steps = 0;
        while cur != t {
            steps += 1;
            assert!(
                steps <= g.n() + 1,
                "decompose walk did not reach the sink: cyclic flow?"
            );
            let best = g
                .neighbors(cur)
                .iter()
                .map(|a| (a.edge, a.to, arc_flow(&flow, cur, a.edge, g)))
                .filter(|&(_, _, f)| f > tol)
                .max_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)));
            let Some((e, to, f)) = best else {
                // Dead end with residual below tolerance: stop cleanly.
                return out;
            };
            bottleneck = bottleneck.min(f);
            verts.push(to);
            edges.push(e);
            cur = to;
        }
        // Subtract the bottleneck along the walk.
        for (i, &e) in edges.iter().enumerate() {
            let (x, _) = g.endpoints(e);
            if x == verts[i] {
                flow[e as usize] -= bottleneck;
            } else {
                flow[e as usize] += bottleneck;
            }
        }
        let path = Path::from_edges(g, s, &edges).expect("walk is a valid path");
        // Electrical walks follow strictly decreasing potential, hence are
        // simple; shortcut defensively anyway.
        out.push((path.shortcut(), bottleneck));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    #[test]
    fn single_path_flow_decomposes_to_itself() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let flow = vec![2.0, 2.0, 2.0];
        assert!(is_conserving(&g, &flow, 0, 3, 2.0, 1e-9));
        let d = decompose(&g, flow, 0, 3, 1e-9);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0.vertices(), &[0, 1, 2, 3]);
        assert!((d[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn split_flow_decomposes_to_two_paths() {
        // Ring of 4: flow 0 -> 2 split 0.75 / 0.25 over the two sides.
        let g = generators::ring(4); // edges: (0,1), (1,2), (2,3), (3,0)
        let flow = vec![0.75, 0.75, -0.25, -0.25];
        assert!(is_conserving(&g, &flow, 0, 2, 1.0, 1e-9));
        let d = decompose(&g, flow, 0, 2, 1e-9);
        assert_eq!(d.len(), 2);
        let total: f64 = d.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Largest component first (greedy).
        assert!((d[0].1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn reversed_orientation_flow_handled() {
        // Edge stored (0,1) but flow goes 1 -> 0.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let flow = vec![-1.5];
        assert!(is_conserving(&g, &flow, 1, 0, 1.5, 1e-9));
        let d = decompose(&g, flow, 1, 0, 1e-9);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0.vertices(), &[1, 0]);
    }

    #[test]
    fn weights_sum_to_value_on_random_acyclic_flows() {
        // Build an acyclic flow by pushing along BFS layers of a grid.
        let g = generators::grid(3, 3);
        // Two explicit paths 0->8.
        let p1 = [0u32, 1, 2, 5, 8];
        let p2 = [0u32, 3, 6, 7, 8];
        let mut flow = vec![0.0; g.m()];
        for (w, p) in [(0.6, &p1[..]), (0.4, &p2[..])] {
            for win in p.windows(2) {
                let e = g.edges_between(win[0], win[1])[0];
                let (x, _) = g.endpoints(e);
                flow[e as usize] += if x == win[0] { w } else { -w };
            }
        }
        assert!(is_conserving(&g, &flow, 0, 8, 1.0, 1e-9));
        let d = decompose(&g, flow, 0, 8, 1e-9);
        let total: f64 = d.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-6);
        for (p, _) in &d {
            assert!(p.is_simple());
            assert_eq!(p.source(), 0);
            assert_eq!(p.target(), 8);
        }
    }

    #[test]
    fn zero_flow_decomposes_to_nothing() {
        let g = generators::ring(4);
        let d = decompose(&g, vec![0.0; 4], 0, 2, 1e-9);
        assert!(d.is_empty());
    }

    #[test]
    fn nan_poisoned_flow_does_not_panic() {
        // A NaN-poisoned side of the ring (e.g. a solver overflow leaking
        // into the electrical currents) must not panic the greedy walk's
        // arc selection: the comparator is `total_cmp` and NaN arcs fail
        // the `f > tol` residual filter, so the clean side decomposes and
        // the poisoned mass is simply never walked.
        let g = generators::ring(4); // edges: (0,1), (1,2), (2,3), (3,0)
        let flow = vec![1.0, 1.0, f64::NAN, f64::NAN];
        let d = decompose(&g, flow, 0, 2, 1e-9);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0.vertices(), &[0, 1, 2]);
        assert!((d[0].1 - 1.0).abs() < 1e-9);
    }
}
