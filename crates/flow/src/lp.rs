//! A small dense two-phase simplex solver.
//!
//! Offline LP crates are thin in this environment (see DESIGN.md), and the
//! reproduction only needs exact LP solves for *cross-validation* of the
//! Frank–Wolfe solver on small instances, so we implement standard-form
//! simplex with Bland's rule directly.
//!
//! Problem form: minimize `c . x` subject to `A x = b`, `x >= 0`, with
//! `b >= 0` (negate rows to normalize).

use crate::demand::Demand;
use ssor_graph::Graph;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution `x` with objective `value` was found.
    Optimal {
        /// Optimal primal point.
        x: Vec<f64>,
        /// Objective value `c . x`.
        value: f64,
    },
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves `min c.x  s.t.  A x = b, x >= 0` with two-phase dense simplex.
///
/// Rows with negative `b` are negated internally, so any sign of `b` is
/// accepted. Intended for small instances (tests and tiny experiments).
///
/// # Panics
///
/// Panics if dimensions of `a`, `b`, `c` are inconsistent.
pub fn solve_equality_form(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> LpResult {
    let m = a.len();
    assert_eq!(b.len(), m);
    let n = if m == 0 { c.len() } else { a[0].len() };
    assert!(a.iter().all(|row| row.len() == n));
    assert_eq!(c.len(), n);

    // Normalize b >= 0.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    for i in 0..m {
        if b[i] < 0.0 {
            rows.push(a[i].iter().map(|v| -v).collect());
            rhs.push(-b[i]);
        } else {
            rows.push(a[i].clone());
            rhs.push(b[i]);
        }
    }

    // Tableau with artificial variables n..n+m. Layout: columns 0..n are
    // original, n..n+m artificial, last column is RHS.
    let total = n + m;
    let mut t = vec![vec![0.0f64; total + 1]; m];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = rows[i][j];
        }
        t[i][n + i] = 1.0;
        t[i][total] = rhs[i];
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Phase 1: minimize sum of artificials.
    let mut obj = vec![0.0f64; total + 1];
    obj[n..total].fill(1.0);
    // Reduce objective over the initial basis.
    for row in t.iter().take(m) {
        for (o, tv) in obj.iter_mut().zip(row.iter()) {
            *o -= tv;
        }
    }
    if !run_simplex(&mut t, &mut obj, &mut basis, total) {
        return LpResult::Unbounded; // cannot happen in phase 1, defensive
    }
    if -obj[total] > 1e-7 {
        return LpResult::Infeasible;
    }
    // Drive artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut obj, &mut basis, i, j, total);
            }
        }
    }

    // Phase 2: original objective, with artificial columns frozen.
    let mut obj2 = vec![0.0f64; total + 1];
    obj2[..n].copy_from_slice(&c[..n]);
    for i in 0..m {
        let bj = basis[i];
        if bj < n && c[bj].abs() > 0.0 {
            let coef = obj2[bj];
            if coef.abs() > 0.0 {
                for (o, tv) in obj2.iter_mut().zip(t[i].iter()) {
                    *o -= coef * tv;
                }
            }
        }
    }
    // Forbid artificial columns from entering.
    obj2[n..total].fill(f64::INFINITY);
    if !run_simplex(&mut t, &mut obj2, &mut basis, total) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][total];
        }
    }
    let value = c.iter().zip(x.iter()).map(|(ci, xi)| ci * xi).sum();
    LpResult::Optimal { x, value }
}

/// Runs simplex iterations with Bland's rule. Returns `false` on
/// unboundedness. Columns with `obj[j] = +inf` never enter.
fn run_simplex(t: &mut [Vec<f64>], obj: &mut [f64], basis: &mut [usize], total: usize) -> bool {
    let m = t.len();
    loop {
        // Bland: smallest index with negative reduced cost.
        let entering = (0..total).find(|&j| obj[j].is_finite() && obj[j] < -EPS);
        let Some(j) = entering else {
            return true;
        };
        // Ratio test, Bland tie-break on basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][j] > EPS {
                let ratio = t[i][total] / t[i][j];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return false; // unbounded
        };
        pivot(t, obj, basis, i, j, total);
    }
}

fn pivot(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    let m = t.len();
    let pv = t[row][col];
    debug_assert!(pv.abs() > EPS);
    for tv in t[row].iter_mut().take(total + 1) {
        *tv /= pv;
    }
    // Take the pivot row out so the eliminations can borrow it immutably
    // while mutating the other rows (no per-pivot allocation).
    let pivot_row = std::mem::take(&mut t[row]);
    for (i, trow) in t.iter_mut().enumerate().take(m) {
        if i != row && trow[col].abs() > EPS {
            let f = trow[col];
            for (tv, pv) in trow.iter_mut().zip(pivot_row.iter()) {
                *tv -= f * pv;
            }
        }
    }
    t[row] = pivot_row;
    if obj[col].is_finite() && obj[col].abs() > EPS {
        let f = obj[col];
        for j in 0..=total {
            if obj[j].is_finite() {
                obj[j] -= f * t[row][j];
            }
        }
    }
    basis[row] = col;
}

/// Exact minimum congestion over a candidate path system, via simplex.
///
/// Builds the LP `min λ` s.t. per-pair flow conservation and per-edge
/// `load <= λ`. Returns the optimal congestion, or `None` for an empty
/// demand. Exponential-free but dense: use only on small instances.
///
/// # Panics
///
/// Panics if some demanded pair has no candidate paths.
pub fn exact_restricted_congestion(
    g: &Graph,
    d: &Demand,
    candidates: crate::Candidates<'_>,
) -> Option<f64> {
    let pairs = d.support();
    if pairs.is_empty() {
        return Some(0.0);
    }
    let store = candidates.store();
    // Variables: x_{pair,path} for each candidate, then lambda, then one
    // slack per edge.
    let mut var_paths: Vec<(usize, ssor_graph::PathId)> = Vec::new(); // (pair index, path)
    let mut pair_offsets = Vec::with_capacity(pairs.len());
    for (pi, &(s, t)) in pairs.iter().enumerate() {
        let cands = candidates
            .ids(s, t)
            .unwrap_or_else(|| panic!("no candidates for ({s}, {t})"));
        assert!(!cands.is_empty());
        pair_offsets.push(var_paths.len());
        for &p in cands {
            var_paths.push((pi, p));
        }
    }
    let np = var_paths.len();
    let lambda = np;
    let slack0 = np + 1;
    let nvars = np + 1 + g.m();

    let mut a: Vec<Vec<f64>> = Vec::new();
    let mut b: Vec<f64> = Vec::new();
    // Pair rows: sum of x over the pair's paths = d(s, t).
    for (pi, &(s, t)) in pairs.iter().enumerate() {
        let mut row = vec![0.0; nvars];
        for (vi, &(pj, _)) in var_paths.iter().enumerate() {
            if pj == pi {
                row[vi] = 1.0;
            }
        }
        a.push(row);
        b.push(d.get(s, t));
    }
    // Edge rows: load_e - lambda + slack_e = 0.
    for e in 0..g.m() {
        let mut row = vec![0.0; nvars];
        for (vi, &(_, p)) in var_paths.iter().enumerate() {
            let cnt = store
                .edges(p)
                .iter()
                .filter(|&&pe| pe as usize == e)
                .count();
            if cnt > 0 {
                row[vi] = cnt as f64;
            }
        }
        row[lambda] = -1.0;
        row[slack0 + e] = 1.0;
        a.push(row);
        b.push(0.0);
    }
    let mut c = vec![0.0; nvars];
    c[lambda] = 1.0;

    match solve_equality_form(&a, &b, &c) {
        LpResult::Optimal { value, .. } => Some(value),
        LpResult::Infeasible => None,
        LpResult::Unbounded => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::{generators, Path};

    #[test]
    fn solves_tiny_lp() {
        // min -x - y  s.t. x + y + s = 4, x + 2y + t = 6  (i.e. <= rows)
        let a = vec![vec![1.0, 1.0, 1.0, 0.0], vec![1.0, 2.0, 0.0, 1.0]];
        let b = vec![4.0, 6.0];
        let c = vec![-1.0, -1.0, 0.0, 0.0];
        match solve_equality_form(&a, &b, &c) {
            LpResult::Optimal { value, x } => {
                assert!((value - (-4.0)).abs() < 1e-7, "value = {value}");
                assert!((x[0] + x[1] - 4.0).abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x = 1 and x = 2 simultaneously.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0];
        let c = vec![0.0];
        assert_eq!(solve_equality_form(&a, &b, &c), LpResult::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x - y = 0 : x can grow with y.
        let a = vec![vec![1.0, -1.0]];
        let b = vec![0.0];
        let c = vec![-1.0, 0.0];
        assert_eq!(solve_equality_form(&a, &b, &c), LpResult::Unbounded);
    }

    #[test]
    fn handles_negative_rhs_rows() {
        // -x = -3  =>  x = 3.
        let a = vec![vec![-1.0]];
        let b = vec![-3.0];
        let c = vec![1.0];
        match solve_equality_form(&a, &b, &c) {
            LpResult::Optimal { value, .. } => assert!((value - 3.0).abs() < 1e-7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exact_congestion_on_ring_split() {
        let g = generators::ring(6);
        let mut cands = crate::CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
        cands.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
        let d = Demand::from_pairs(&[(0, 3)]);
        let opt = exact_restricted_congestion(&g, &d, cands.as_candidates()).unwrap();
        assert!((opt - 0.5).abs() < 1e-7, "opt = {opt}");
    }

    #[test]
    fn exact_congestion_single_path() {
        let g = generators::ring(5);
        let mut cands = crate::CandidateSet::new();
        cands.insert(&Path::from_vertices(&g, &[0, 1, 2]).unwrap());
        let d = Demand::from_pairs(&[(0, 2)]).scaled(4.0);
        let opt = exact_restricted_congestion(&g, &d, cands.as_candidates()).unwrap();
        assert!((opt - 4.0).abs() < 1e-7);
    }

    #[test]
    fn exact_matches_frank_wolfe_on_random_small_instances() {
        use crate::solver::{min_congestion_restricted, SolveOptions};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..8 {
            let g = generators::erdos_renyi(8, 0.45, &mut rng);
            // Random candidate sets from shortest + random simple paths.
            let mut cands = crate::CandidateSet::new();
            let mut d = Demand::new();
            for _ in 0..4 {
                let s = rng.gen_range(0..8) as u32;
                let mut t = rng.gen_range(0..8) as u32;
                if s == t {
                    t = (t + 1) % 8;
                }
                let all = ssor_graph::ksp::k_shortest_paths(&g, s, t, 3, &|_| 1.0);
                if all.is_empty() {
                    continue;
                }
                d.set(s, t, rng.gen_range(1..4) as f64);
                for p in &all {
                    cands.insert(p);
                }
            }
            if d.is_empty() {
                continue;
            }
            let exact = exact_restricted_congestion(&g, &d, cands.as_candidates()).unwrap();
            let fw = min_congestion_restricted(
                &g,
                &d,
                cands.as_candidates(),
                &SolveOptions {
                    eps: 0.01,
                    max_iters: 4000,
                },
            );
            assert!(
                fw.congestion <= exact * 1.03 + 1e-6,
                "trial {trial}: FW {} vs exact {exact}",
                fw.congestion
            );
            assert!(
                fw.lower_bound <= exact + 1e-6,
                "trial {trial}: dual {} exceeds exact {exact}",
                fw.lower_bound
            );
        }
    }
}
