//! Candidate-path views: the interned representation Stage-4 solvers
//! consume.
//!
//! A semi-oblivious routing's candidate sets live in `ssor-core`'s
//! `PathSystem` (Definition 2.1), which stores paths interned in a
//! [`PathStore`]. The solvers in this crate only need a *borrowed view* of
//! that structure — the arena plus per-pair id lists — so they take a
//! [`Candidates`] rather than a concrete path-system type, keeping the
//! crate DAG acyclic. Callers without a path system (tests, ad-hoc
//! experiments) can build an owned [`CandidateSet`] instead.

use ssor_graph::{Path, PathId, PathStore, VertexId};
use std::collections::BTreeMap;

/// A borrowed candidate-path view: a path arena plus per-pair candidate
/// ids. `Copy`, so it threads through solver plumbing freely.
///
/// # Examples
///
/// ```
/// use ssor_flow::CandidateSet;
/// use ssor_graph::{generators, Path};
///
/// let g = generators::ring(6);
/// let mut set = CandidateSet::new();
/// set.insert(&Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap());
/// set.insert(&Path::from_vertices(&g, &[0, 5, 4, 3]).unwrap());
/// let view = set.as_candidates();
/// assert_eq!(view.ids(0, 3).unwrap().len(), 2);
/// assert!(view.ids(1, 4).is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Candidates<'a> {
    store: &'a PathStore,
    per_pair: &'a BTreeMap<(VertexId, VertexId), Vec<PathId>>,
}

impl<'a> Candidates<'a> {
    /// Wraps an arena and a per-pair id map. Every id must come from
    /// `store`.
    pub fn new(
        store: &'a PathStore,
        per_pair: &'a BTreeMap<(VertexId, VertexId), Vec<PathId>>,
    ) -> Self {
        Candidates { store, per_pair }
    }

    /// The backing arena.
    pub fn store(&self) -> &'a PathStore {
        self.store
    }

    /// Candidate ids for `(s, t)`, if any.
    pub fn ids(&self, s: VertexId, t: VertexId) -> Option<&'a [PathId]> {
        self.per_pair.get(&(s, t)).map(|v| v.as_slice())
    }

    /// Pairs with at least one candidate.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + 'a {
        self.per_pair.keys().copied()
    }

    /// Materializes the candidates of `(s, t)` as owned [`Path`]s (the
    /// boundary type; use [`Candidates::ids`] in hot paths).
    pub fn materialize(&self, s: VertexId, t: VertexId) -> Option<Vec<Path>> {
        self.ids(s, t)
            .map(|ids| ids.iter().map(|&id| self.store.materialize(id)).collect())
    }
}

/// An owned candidate set: the minimal `(arena, per-pair ids)` pair for
/// callers that do not have a full `PathSystem` (see [`Candidates`]).
///
/// Duplicate inserts (same endpoints and edge sequence) collapse, same as
/// `PathSystem::insert`.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    store: PathStore,
    per_pair: BTreeMap<(VertexId, VertexId), Vec<PathId>>,
}

impl CandidateSet {
    /// An empty set.
    pub fn new() -> Self {
        CandidateSet::default()
    }

    /// Adds `path` to its endpoint pair's candidates; returns whether it
    /// was new.
    pub fn insert(&mut self, path: &Path) -> bool {
        let id = self.store.intern(path);
        let entry = self
            .per_pair
            .entry((path.source(), path.target()))
            .or_default();
        if entry.contains(&id) {
            false
        } else {
            entry.push(id);
            true
        }
    }

    /// The borrowed view solvers consume.
    pub fn as_candidates(&self) -> Candidates<'_> {
        Candidates::new(&self.store, &self.per_pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    #[test]
    fn insert_dedups_and_materializes() {
        let g = generators::ring(6);
        let p = Path::from_vertices(&g, &[0, 1, 2]).unwrap();
        let mut set = CandidateSet::new();
        assert!(set.insert(&p));
        assert!(!set.insert(&p));
        let view = set.as_candidates();
        assert_eq!(view.pairs().collect::<Vec<_>>(), vec![(0, 2)]);
        assert_eq!(view.materialize(0, 2).unwrap(), vec![p]);
        assert!(view.materialize(2, 0).is_none());
    }
}
