//! Golden tests: every rule family must fire on its positive fixture
//! and stay silent on its negative fixture.
//!
//! Each `tests/fixtures/<rule>/` directory holds `positive.rs` (code
//! the rule must flag), `negative.rs` (near-miss code it must accept),
//! and `positive.expected` (the byte-exact diagnostics for the
//! positive file). The fixtures are plain text, never compiled — the
//! workspace runner skips any directory named `fixtures` so the
//! self-check does not trip over them.
//!
//! Regenerate goldens after an intentional message change with
//! `UPDATE_GOLDEN=1 cargo test -p ssor-lint --test fixtures`.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use ssor_lint::callgraph::CallGraph;
use ssor_lint::parser::parse_file;
use ssor_lint::rules::{self, contract, ratchet};
use ssor_lint::{scan_source, Diagnostic, FileClass};

fn fixture_dir(rule: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

/// Runs the per-file rules on one fixture under a pretend workspace
/// path (so `FileClass` gives the file the right obligations).
fn check_fixture(rule: &str, which: &str, pretend_path: &str) -> Vec<Diagnostic> {
    let text = fs::read_to_string(fixture_dir(rule).join(which)).unwrap();
    let file = scan_source(pretend_path, &text);
    let class = FileClass::of(pretend_path);
    let mut out = Vec::new();
    rules::check_file(&file, &class, &mut out);
    out.sort();
    out
}

/// Compares rendered diagnostics against `<rule>/positive.expected`,
/// or rewrites the golden when `UPDATE_GOLDEN=1`.
fn assert_golden(rule: &str, diagnostics: &[Diagnostic]) {
    assert!(
        !diagnostics.is_empty(),
        "{rule}: positive fixture must fire at least once"
    );
    let rendered: String = diagnostics.iter().map(|d| format!("{d}\n")).collect();
    let golden = fixture_dir(rule).join("positive.expected");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden, &rendered).unwrap();
        return;
    }
    let want = fs::read_to_string(&golden)
        .unwrap_or_else(|_| panic!("{rule}: missing golden — run with UPDATE_GOLDEN=1"));
    assert_eq!(
        rendered, want,
        "{rule}: diagnostics drifted from positive.expected \
         (UPDATE_GOLDEN=1 to re-bless an intentional change)"
    );
}

fn assert_silent(rule: &str, diagnostics: &[Diagnostic]) {
    assert!(
        diagnostics.is_empty(),
        "{rule}: negative fixture must be clean, got:\n{}",
        diagnostics
            .iter()
            .map(|d| format!("{d}\n"))
            .collect::<String>()
    );
}

/// Per-file rules share one harness shape; ratchet (below) goes
/// through the budget comparison instead.
fn per_file_case(rule: &str, pretend_path: &str) {
    assert_golden(rule, &check_fixture(rule, "positive.rs", pretend_path));
    assert_silent(rule, &check_fixture(rule, "negative.rs", pretend_path));
}

#[test]
fn rng_rule_fires_and_accepts() {
    per_file_case("rng", "crates/fxt/src/sampling.rs");
}

#[test]
fn wall_clock_rule_fires_and_accepts() {
    // The report_json.rs pretend path turns on the serialized
    // field-name cross-check as well as the banned-call scan.
    per_file_case("wall_clock", "crates/fxt/src/report_json.rs");
}

#[test]
fn float_ord_rule_fires_and_accepts() {
    per_file_case("float_ord", "crates/fxt/src/order.rs");
}

#[test]
fn par_collect_rule_fires_and_accepts() {
    per_file_case("par_collect", "crates/fxt/src/fan.rs");
}

#[test]
fn par_collect_rule_exempts_the_par_module() {
    // The same raw adapters are legal inside the one module that
    // implements the ordered primitives.
    let d = check_fixture("par_collect", "positive.rs", "crates/graph/src/par.rs");
    assert!(d.is_empty(), "par.rs itself is exempt, got {d:?}");
}

#[test]
fn forbid_unsafe_rule_fires_and_accepts() {
    per_file_case("forbid_unsafe", "crates/fxt/src/lib.rs");
}

#[test]
fn forbid_unsafe_only_binds_crate_roots() {
    let text = fs::read_to_string(fixture_dir("forbid_unsafe").join("positive.rs")).unwrap();
    let file = scan_source("crates/fxt/src/helper.rs", &text);
    let class = FileClass::of("crates/fxt/src/helper.rs");
    let mut out = Vec::new();
    rules::check_file(&file, &class, &mut out);
    assert!(out.is_empty(), "non-root modules carry no attribute duty");
}

/// Runs the call-graph contract rules on one fixture: the file is
/// parsed into a one-file call graph of its own, with its `entry`
/// function declared hot under `rule`.
fn check_contract_fixture(rule: &str, which: &str) -> Vec<Diagnostic> {
    let text = fs::read_to_string(fixture_dir(rule).join(which)).unwrap();
    let pretend = "crates/serve/src/hot.rs";
    let file = scan_source(pretend, &text);
    let graph = CallGraph::build(&[parse_file(&file)], &|_, _| true);
    let contracts = ssor_lint::contracts::from_json(&format!(
        r#"{{ "entry": {{ "crate": "ssor-serve", "rules": ["{rule}"], "why": "fixture" }} }}"#
    ))
    .unwrap();
    let mut files = BTreeMap::new();
    files.insert(pretend.to_string(), file);
    let mut out = Vec::new();
    contract::check("lint_contracts.json", &contracts, &graph, &files, &mut out);
    out.sort();
    out
}

#[test]
fn hot_panic_contract_fires_transitively_and_accepts() {
    let out = check_contract_fixture("hot_panic", "positive.rs");
    assert!(
        out.iter()
            .any(|d| d.message.contains("entry → lookup → pick")),
        "callee-of-callee detection reports the chain: {out:?}"
    );
    assert_golden("hot_panic", &out);
    assert_silent(
        "hot_panic",
        &check_contract_fixture("hot_panic", "negative.rs"),
    );
}

#[test]
fn hot_alloc_contract_fires_transitively_and_accepts() {
    let out = check_contract_fixture("hot_alloc", "positive.rs");
    assert!(
        out.iter()
            .any(|d| d.message.contains("entry → fanout → gather")),
        "callee-of-callee detection reports the chain: {out:?}"
    );
    assert_golden("hot_alloc", &out);
    assert_silent(
        "hot_alloc",
        &check_contract_fixture("hot_alloc", "negative.rs"),
    );
}

#[test]
fn ratchet_rule_fires_and_accepts() {
    let budget: BTreeMap<String, ratchet::Counts> = [(
        "ssor-fxt".to_string(),
        ratchet::Counts {
            hash_containers: 1,
            indexing: 1,
            panics: 0,
            unwraps: 1,
        },
    )]
    .into();

    let count = |which: &str| {
        let text = fs::read_to_string(fixture_dir("ratchet").join(which)).unwrap();
        let file = scan_source("crates/fxt/src/state.rs", &text);
        let mut counts = BTreeMap::new();
        counts.insert("ssor-fxt".to_string(), ratchet::count_file(&file));
        counts
    };

    let mut out = Vec::new();
    let mut notes = Vec::new();
    ratchet::check_counts(
        "lint_budget.json",
        &count("positive.rs"),
        &budget,
        &mut out,
        &mut notes,
    );
    out.sort();
    assert_golden("ratchet", &out);

    let mut out = Vec::new();
    let mut notes = Vec::new();
    ratchet::check_counts(
        "lint_budget.json",
        &count("negative.rs"),
        &budget,
        &mut out,
        &mut notes,
    );
    assert_silent("ratchet", &out);
    assert!(notes.is_empty(), "exactly on budget leaves no slack note");
}
