//! The workspace must pass its own lint: `ssor-lint --check` against
//! the committed `lint_budget.json` is a tier-1 test, not just a CI
//! job, so `cargo test` alone catches a determinism-contract
//! regression.

use std::path::PathBuf;

use ssor_lint::{run, Mode};

fn workspace_root() -> PathBuf {
    // crates/lint/ -> crates/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let budget = root.join("lint_budget.json");
    let outcome = run(&root, &budget, Mode::Check).expect("workspace scan");
    assert!(
        outcome.files_scanned > 50,
        "scan looks truncated: only {} files",
        outcome.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "workspace lint violations:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| format!("{d}\n"))
            .collect::<String>()
    );
}

#[test]
fn budget_matches_measured_counts() {
    // The committed budget must not drift *above* reality either:
    // stale slack would let new HashMaps in silently. `--bless`
    // keeps it tight; this test keeps `--bless` honest.
    let root = workspace_root();
    let budget = root.join("lint_budget.json");
    let outcome = run(&root, &budget, Mode::Check).expect("workspace scan");
    assert!(
        outcome.notes.is_empty(),
        "budget has slack — run `cargo run -p ssor-lint -- --bless`:\n{}",
        outcome.notes.join("\n")
    );
}
