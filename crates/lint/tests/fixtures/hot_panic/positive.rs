// Fixture: the hot entry's transitive closure (entry → lookup → pick)
// contains an unwrap, an expect, and raw slice indexing — each must be
// reported with the call chain that makes it hot.

pub fn entry(xs: &[f64], i: usize) -> f64 {
    lookup(xs, i)
}

fn lookup(xs: &[f64], i: usize) -> f64 {
    pick(xs, i).unwrap()
}

fn pick(xs: &[f64], i: usize) -> Option<f64> {
    let first = xs[0];
    Some(first + xs.iter().copied().next().expect("non-empty"))
}
