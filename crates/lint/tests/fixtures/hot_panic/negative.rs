// Fixture: the same shape stays silent when every hazard is either
// infallible-by-construction (`get` + fallback flow) or carries an
// audited allow — and a test helper sharing a callee's name never
// taints the entry (test fns are not call-graph candidates).

pub fn entry(xs: &[f64], i: usize) -> f64 {
    audit(xs);
    lookup(xs, i)
}

fn lookup(xs: &[f64], i: usize) -> f64 {
    pick(xs, i).unwrap_or(0.0)
}

fn pick(xs: &[f64], i: usize) -> Option<f64> {
    let first = xs[i]; // lint: allow(hot_panic) index clamped by the entry
    xs.get(i).copied().map(|x| x + first)
}

#[cfg(test)]
mod tests {
    fn audit(xs: &[f64]) -> f64 {
        xs[0] + xs.iter().next().unwrap()
    }
}
