// Fixture: every ambient-entropy spelling the rng rule bans.
// (Never compiled — scanned as text by the golden harness.)

fn ambient_draws() {
    let mut rng = rand::thread_rng();
    let x: f64 = rand::random();
    let r = StdRng::from_entropy();
    let _ = (rng, x, r);
}
