// Fixture: seeded RNG use the rng rule must accept, plus banned names
// in positions the scanner must blank (comments and string literals).

// A comment mentioning thread_rng is documentation, not a violation.
fn seeded_draws(master: u64) {
    let mut rng = StdRng::seed_from_u64(derive_seed(master, 0));
    let msg = "do not call thread_rng or from_entropy";
    let x: f64 = rng.gen();
    let _ = (msg, x);
}

// An identifier that merely *contains* a banned word is fine.
fn my_thread_rng_audit() {}
