// Fixture: NaN-hazardous float comparisons the float_ord rule flags.

fn pick(xs: &mut Vec<(usize, f64)>) -> Option<(usize, f64)> {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    xs.iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}
