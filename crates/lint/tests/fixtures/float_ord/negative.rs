// Fixture: total-order float comparisons the float_ord rule accepts.

fn pick(xs: &mut Vec<(usize, f64)>) -> Option<(usize, f64)> {
    xs.sort_by(|a, b| a.1.total_cmp(&b.1));
    xs.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1))
}

// partial_cmp on non-float types routed through Ord is also fine once
// spelled as cmp.
fn tie_break(a: &[u32], b: &[u32]) -> std::cmp::Ordering {
    a.cmp(b)
}
