// Fixture: two hash-container occurrences, two index brackets, one
// panic!, and two unwraps — over the 1/1/0/1 budget the harness
// checks this file against.

fn state() -> Vec<(u32, f64)> {
    let mut m = HashMap::new();
    let mut s = HashSet::new();
    s.insert(1);
    m.insert(1, lookup(1).unwrap());
    m.insert(2, lookup(2).unwrap());
    m.into_iter().collect()
}

fn pick(xs: &[f64], i: usize) -> f64 {
    if i >= xs.len() {
        panic!("index {i} out of range");
    }
    xs[i] + xs[0]
}
