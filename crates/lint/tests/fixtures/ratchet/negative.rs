// Fixture: within the 1/1 budget. BTreeMap never counts; an allowed
// line is excluded from the tally; expect() is not unwrap().

fn state() -> BTreeMap<u32, f64> {
    let mut m = BTreeMap::new();
    let interner: HashMap<u32, u32> = HashMap::new(); // lint: allow(ratchet)
    let lut = HashSet::new();
    let _ = (interner, &lut);
    m.insert(1, lookup(1).expect("key 1 is seeded"));
    m.insert(2, lookup(2).unwrap());
    m
}
