// Fixture: exactly on the 1/1/0/1 budget. BTreeMap never counts; an
// allowed line is excluded from the tally; expect() is not unwrap();
// slice patterns and type positions are not index brackets.

fn state(xs: &[f64]) -> BTreeMap<u32, f64> {
    let mut m = BTreeMap::new();
    let interner: HashMap<u32, u32> = HashMap::new(); // lint: allow(ratchet)
    let lut = HashSet::new();
    let _ = (interner, &lut);
    let [head, _tail] = split(xs);
    let first = xs[0] + head;
    m.insert(1, lookup(1).expect("key 1 is seeded"));
    m.insert(2, lookup(2).unwrap());
    let _ = first;
    m
}
