// Fixture: fan-out through the blessed primitives, plus a reviewed
// raw adapter behind the allow annotation.

fn fan_out(items: &[Item]) -> Vec<Out> {
    par_ordered_map(items, 2, process)
}

fn reduce(parts: &[EdgeLoads]) -> EdgeLoads {
    EdgeLoads::par_merge(parts)
}

fn reviewed(ranges: &[(usize, usize)]) -> Vec<Vec<f64>> {
    ranges
        // Disjoint ranges reassembled in range order below — reviewed,
        // thread-count-invariant. lint: allow(par_collect)
        .par_iter()
        .map(fill)
        .collect()
}
