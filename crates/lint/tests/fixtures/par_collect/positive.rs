// Fixture: raw rayon fan-outs outside the ordered-merge primitives.

fn fan_out(items: &[Item]) -> Vec<Out> {
    items.par_iter().map(process).collect()
}

fn consume(items: Vec<Item>) -> Vec<Out> {
    items.into_par_iter().map(process).collect()
}

fn stream(it: impl Iterator<Item = Item>) -> Vec<Out> {
    it.par_bridge().map(process).collect()
}
