// Fixture: annotated wall-clock reads and timing-free field names.

fn timed_build() {
    // Diagnostics-only timing, kept out of the report body.
    let t0 = Instant::now(); // lint: allow(wall_clock)
    // A standalone allow comment governs the next code line.
    // lint: allow(wall_clock)
    let stamp = SystemTime::now();
    let _ = (t0, stamp);
}

fn serialize(report: &Report) -> Value {
    obj(vec![
        ("congestion", num(report.congestion)),
        ("sparsity", num(report.sparsity as f64)),
    ])
}

// The word "wall" outside field-name position (no `(`/`,` context).
fn doc() -> &'static str {
    "wall"
}
