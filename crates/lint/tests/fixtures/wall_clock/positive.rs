// Fixture: un-annotated wall-clock reads, plus a timing-vocabulary
// field name in report_json position (the harness scans this file
// under a `report_json.rs` pretend path so the cross-check applies).

fn timed_build() {
    let t0 = Instant::now();
    let stamp = SystemTime::now();
    let _ = (t0, stamp);
}

fn serialize(report: &Report) -> Value {
    obj(vec![
        ("congestion", num(report.congestion)),
        ("wall_secs", num(report.wall.as_secs_f64())),
    ])
}
