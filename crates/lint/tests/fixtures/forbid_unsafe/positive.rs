//! Fixture: a crate root missing `#![forbid(unsafe_code)]` (scanned
//! under a `src/lib.rs` pretend path).

pub fn noop() {}
