// Fixture: per-request allocation two calls deep (entry → fanout →
// gather) — growth-by-push and the implicit zero-capacity Vec must be
// reported with the chain that makes them hot.

pub fn entry(n: usize) -> Vec<u32> {
    fanout(n)
}

fn fanout(n: usize) -> Vec<u32> {
    gather(n)
}

fn gather(n: usize) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(i as u32);
    }
    out
}
