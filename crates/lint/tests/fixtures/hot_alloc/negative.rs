// Fixture: explicit-capacity allocation is the audited per-batch cost
// the rule allows by doctrine, and a deliberate fill into reserved
// capacity carries its allow.

pub fn entry(n: usize) -> Vec<u32> {
    fanout(n)
}

fn fanout(n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    fill(n, &mut out);
    out
}

fn fill(n: usize, out: &mut Vec<u32>) {
    for i in 0..n {
        out.push(i as u32); // lint: allow(hot_alloc) capacity reserved by fanout
    }
}
