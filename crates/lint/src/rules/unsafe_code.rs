//! Rule `forbid_unsafe`: every crate root forbids `unsafe`.
//!
//! **Why.** The workspace's concurrency story (epoch-swapped route
//! tables, the work-stealing sweep scheduler, rayon fan-outs) is built
//! entirely from safe primitives — `Mutex` + `AtomicU64` epochs,
//! bounded channels, scoped threads — precisely so that the
//! determinism arguments stay arguments about *logic*, never about
//! memory models. `#![forbid(unsafe_code)]` (unlike `deny`) cannot be
//! overridden by an inner `#[allow]`, so its presence in the crate
//! root is a complete proof that no `unsafe` block hides anywhere in
//! the crate. The workspace `[lints]` table forbids it too; the
//! in-source attribute is kept as well so the guarantee survives being
//! built outside the workspace (and stays visible at the top of every
//! crate).
//!
//! **Rule.** Every crate root (`src/lib.rs`, `src/main.rs`) must
//! contain a literal `#![forbid(unsafe_code)]` line. There is no allow
//! escape: an `unsafe` block needs a different PR conversation than a
//! lint annotation.

use super::{Diagnostic, FileClass};
use crate::scanner::SourceFile;

/// Rule name (diagnostics only; no `lint: allow` escape).
pub const NAME: &str = "forbid_unsafe";

/// Checks that a crate root carries the forbid attribute.
pub fn check(file: &SourceFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if !class.is_crate_root {
        return;
    }
    let has = file
        .lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !has {
        out.push(Diagnostic {
            path: file.path.clone(),
            line: 1,
            rule: NAME,
            message: "crate root is missing `#![forbid(unsafe_code)]`: the workspace's \
                      determinism arguments assume safe-only concurrency primitives"
                .to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn missing_forbid_fires_on_roots_only() {
        let f = scan_source("crates/x/src/lib.rs", "pub fn f() {}\n");
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/x/src/lib.rs"), &mut out);
        assert_eq!(out.len(), 1);

        let f = scan_source("crates/x/src/other.rs", "pub fn f() {}\n");
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/x/src/other.rs"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn present_forbid_is_clean() {
        let f = scan_source(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/x/src/lib.rs"), &mut out);
        assert!(out.is_empty());
    }
}
