//! Rule `ratchet`: per-crate budgets for panic-prone and
//! order-unstable idioms.
//!
//! **Why.** Four idioms are legal Rust, locally harmless, and globally
//! corrosive here. `HashMap`/`HashSet` have randomized, run-dependent
//! iteration order: iterate one into anything serialized — or even
//! into a float accumulation order — and bytes change between runs
//! (the representation layer exists precisely to keep hot paths on
//! dense edge-id-indexed vectors and `BTreeMap`s). `.unwrap()` turns a
//! violated invariant into a traceless panic three layers from the
//! cause — the decompose/KSP NaN panics this PR fixes were exactly
//! unwraps on a poisoned float order. Slice indexing `v[i]` is the
//! same hazard with even less of a trace (the panic message names no
//! field), and `panic!` itself marks a path someone decided may bring
//! the process down. None can be banned outright (bounded lookups,
//! invariant-backed unwraps, and loud unreachable states are
//! idiomatic), so they are *ratcheted*: each crate's count may never
//! grow past the committed baseline in `lint_budget.json`, and
//! `--bless` re-records the baseline — which is how reductions tighten
//! it for everyone who comes after. The hot paths get the stronger,
//! non-negotiable treatment via the contract rules
//! ([`crate::rules::contract`]); the ratchet is the whole-workspace
//! backstop.
//!
//! **What counts.** Word-boundary `HashMap`/`HashSet` tokens, literal
//! `.unwrap()` calls, expression-position `[` index brackets (see
//! [`crate::scanner::index_brackets`]), and `panic!` invocations in
//! the code (comments, doc examples, and strings never count — the
//! scanner blanks them), over each crate's `src/` tree only
//! (`tests/`, `benches/`, `examples/` may unwrap freely; in-file
//! `#[cfg(test)]` modules do count, which is deliberate slack in the
//! budget, not precision). A line annotated `// lint: allow(ratchet)`
//! is excluded from counting.

use super::Diagnostic;
use crate::scanner::{count_word, index_brackets, SourceFile};
use std::collections::BTreeMap;

/// Rule name, as spelled in `lint: allow(...)`.
pub const NAME: &str = "ratchet";

/// The ratcheted metrics, for one file or one crate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Word-boundary `HashMap` + `HashSet` occurrences.
    pub hash_containers: usize,
    /// Expression-position `[` index brackets.
    pub indexing: usize,
    /// `panic!` invocations.
    pub panics: usize,
    /// Literal `.unwrap()` calls.
    pub unwraps: usize,
}

impl Counts {
    /// Accumulates another file's counts into this crate total.
    pub fn add(&mut self, other: Counts) {
        self.hash_containers += other.hash_containers;
        self.indexing += other.indexing;
        self.panics += other.panics;
        self.unwraps += other.unwraps;
    }
}

/// Counts the ratcheted tokens in one scanned file.
pub fn count_file(file: &SourceFile) -> Counts {
    let mut c = Counts::default();
    for line in &file.lines {
        if line.allows(NAME) {
            continue;
        }
        c.hash_containers += count_word(&line.code, "HashMap");
        c.hash_containers += count_word(&line.code, "HashSet");
        c.indexing += index_brackets(&line.code);
        c.panics += count_word(&line.code, "panic!");
        c.unwraps += line.code.matches(".unwrap()").count();
    }
    c
}

/// Maps a workspace-relative path to the budget key of the crate whose
/// `src/` tree it belongs to (`None` for tests, benches, examples).
pub fn crate_of(rel_path: &str) -> Option<String> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let (dir, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(format!("ssor-{dir}"));
        }
        return None;
    }
    if rel_path.starts_with("src/") {
        return Some("ssor".to_string());
    }
    None
}

/// Compares measured per-crate counts against the committed budget.
///
/// Overruns become diagnostics (anchored at the budget file, which is
/// where the fix — or the bless — lands); crates missing from the
/// budget are overruns of an implicit zero; counts *below* budget
/// produce notes suggesting `--bless`, so reductions get committed as
/// the new ceiling.
pub fn check_counts(
    budget_path: &str,
    counts: &BTreeMap<String, Counts>,
    budget: &BTreeMap<String, Counts>,
    out: &mut Vec<Diagnostic>,
    notes: &mut Vec<String>,
) {
    for (krate, c) in counts {
        let b = match budget.get(krate).copied() {
            Some(b) => b,
            None => {
                out.push(Diagnostic {
                    path: budget_path.to_string(),
                    line: 1,
                    rule: NAME,
                    message: format!(
                        "crate `{krate}` has no budget entry (measured: {} hash containers, \
                         {} index brackets, {} panics, {} unwraps); run `ssor-lint --bless` \
                         to record it",
                        c.hash_containers, c.indexing, c.panics, c.unwraps
                    ),
                });
                continue;
            }
        };
        for (metric, have, max, why) in [
            (
                "hash_containers",
                c.hash_containers,
                b.hash_containers,
                "HashMap iteration order erodes the determinism contract",
            ),
            (
                "indexing",
                c.indexing,
                b.indexing,
                "slice indexing panics trace-free on a bad index",
            ),
            (
                "panics",
                c.panics,
                b.panics,
                "each panic! is a path someone decided may kill the process",
            ),
            (
                "unwraps",
                c.unwraps,
                b.unwraps,
                "unwrap panics surface three layers from their cause",
            ),
        ] {
            if have > max {
                out.push(Diagnostic {
                    path: budget_path.to_string(),
                    line: 1,
                    rule: NAME,
                    message: format!(
                        "crate `{krate}` exceeds its `{metric}` budget: {have} > {max} — \
                         remove the new uses ({why}) or justify raising the budget in \
                         review"
                    ),
                });
            } else if have < max {
                notes.push(format!(
                    "note: crate `{krate}` is under its `{metric}` budget ({have} < {max}); \
                     run `ssor-lint --bless` to tighten the ratchet"
                ));
            }
        }
    }
    for krate in budget.keys() {
        if !counts.contains_key(krate) {
            notes.push(format!(
                "note: budget entry `{krate}` matches no crate in the workspace; \
                 run `ssor-lint --bless` to drop it"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn counting_ignores_comments_strings_and_allowed_lines() {
        let src = "use std::collections::HashMap;\n\
                   // HashMap in a comment, .unwrap() too, v[i], panic!\n\
                   let s = \"HashSet\";\n\
                   let x = opt.unwrap();\n\
                   let y = v[i] + w[j];\n\
                   panic!(\"boom\");\n\
                   let m: HashMap<u32, HashSet<u32>> = HashMap::new(); // lint: allow(ratchet)\n\
                   let z = v[k]; // lint: allow(ratchet)\n";
        let f = scan_source("crates/x/src/a.rs", src);
        let c = count_file(&f);
        assert_eq!(c.hash_containers, 1);
        assert_eq!(c.indexing, 2);
        assert_eq!(c.panics, 1);
        assert_eq!(c.unwraps, 1);
    }

    #[test]
    fn crate_mapping() {
        assert_eq!(
            crate_of("crates/graph/src/par.rs").as_deref(),
            Some("ssor-graph")
        );
        assert_eq!(
            crate_of("crates/bench/src/bin/e1.rs").as_deref(),
            Some("ssor-bench")
        );
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("ssor"));
        assert_eq!(crate_of("crates/graph/tests/t.rs"), None);
        assert_eq!(crate_of("tests/determinism.rs"), None);
        assert_eq!(crate_of("examples/quickstart.rs"), None);
    }

    #[test]
    fn ratchet_semantics() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "ssor-a".to_string(),
            Counts {
                hash_containers: 3,
                indexing: 4,
                panics: 2,
                unwraps: 1,
            },
        );
        counts.insert(
            "ssor-new".to_string(),
            Counts {
                hash_containers: 0,
                indexing: 0,
                panics: 0,
                unwraps: 2,
            },
        );
        let mut budget = BTreeMap::new();
        budget.insert(
            "ssor-a".to_string(),
            Counts {
                hash_containers: 2,
                indexing: 4,
                panics: 1,
                unwraps: 5,
            },
        );
        budget.insert("ssor-gone".to_string(), Counts::default());
        let (mut out, mut notes) = (Vec::new(), Vec::new());
        check_counts("lint_budget.json", &counts, &budget, &mut out, &mut notes);
        // ssor-a: hash + panic overruns, indexing exactly on budget,
        // unwrap under-budget note; ssor-new: missing entry; ssor-gone:
        // stale note.
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[0].message.contains("exceeds its `hash_containers`"));
        assert!(out[1].message.contains("exceeds its `panics`"));
        assert!(out[2].message.contains("no budget entry"));
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("tighten"));
        assert!(notes[1].contains("matches no crate"));
    }
}
