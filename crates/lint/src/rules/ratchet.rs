//! Rule `ratchet`: per-crate budgets for hash containers and `unwrap`.
//!
//! **Why.** Two idioms are legal Rust, locally harmless, and globally
//! corrosive here. `HashMap`/`HashSet` have randomized, run-dependent
//! iteration order: iterate one into anything serialized — or even
//! into a float accumulation order — and bytes change between runs
//! (the representation layer exists precisely to keep hot paths on
//! dense edge-id-indexed vectors and `BTreeMap`s). `.unwrap()` turns a
//! violated invariant into a traceless panic three layers from the
//! cause — the decompose/KSP NaN panics this PR fixes were exactly
//! unwraps on a poisoned float order. Neither can be banned outright
//! (bounded lookups and invariant-backed unwraps are idiomatic), so
//! they are *ratcheted*: each crate's count may never grow past the
//! committed baseline in `lint_budget.json`, and `--bless` re-records
//! the baseline — which is how reductions tighten it for everyone who
//! comes after.
//!
//! **What counts.** Word-boundary `HashMap`/`HashSet` tokens and
//! literal `.unwrap()` calls in the code (comments, doc examples, and
//! strings never count — the scanner blanks them), over each crate's
//! `src/` tree only (`tests/`, `benches/`, `examples/` may unwrap
//! freely; in-file `#[cfg(test)]` modules do count, which is
//! deliberate slack in the budget, not precision). A line annotated
//! `// lint: allow(ratchet)` is excluded from counting.

use super::Diagnostic;
use crate::scanner::{count_word, SourceFile};
use std::collections::BTreeMap;

/// Rule name, as spelled in `lint: allow(...)`.
pub const NAME: &str = "ratchet";

/// The two ratcheted metrics, for one file or one crate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Word-boundary `HashMap` + `HashSet` occurrences.
    pub hash_containers: usize,
    /// Literal `.unwrap()` calls.
    pub unwraps: usize,
}

impl Counts {
    /// Accumulates another file's counts into this crate total.
    pub fn add(&mut self, other: Counts) {
        self.hash_containers += other.hash_containers;
        self.unwraps += other.unwraps;
    }
}

/// Counts the ratcheted tokens in one scanned file.
pub fn count_file(file: &SourceFile) -> Counts {
    let mut c = Counts::default();
    for line in &file.lines {
        if line.allows(NAME) {
            continue;
        }
        c.hash_containers += count_word(&line.code, "HashMap");
        c.hash_containers += count_word(&line.code, "HashSet");
        c.unwraps += line.code.matches(".unwrap()").count();
    }
    c
}

/// Maps a workspace-relative path to the budget key of the crate whose
/// `src/` tree it belongs to (`None` for tests, benches, examples).
pub fn crate_of(rel_path: &str) -> Option<String> {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        let (dir, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(format!("ssor-{dir}"));
        }
        return None;
    }
    if rel_path.starts_with("src/") {
        return Some("ssor".to_string());
    }
    None
}

/// Compares measured per-crate counts against the committed budget.
///
/// Overruns become diagnostics (anchored at the budget file, which is
/// where the fix — or the bless — lands); crates missing from the
/// budget are overruns of an implicit zero; counts *below* budget
/// produce notes suggesting `--bless`, so reductions get committed as
/// the new ceiling.
pub fn check_counts(
    budget_path: &str,
    counts: &BTreeMap<String, Counts>,
    budget: &BTreeMap<String, Counts>,
    out: &mut Vec<Diagnostic>,
    notes: &mut Vec<String>,
) {
    for (krate, c) in counts {
        let b = budget.get(krate).copied();
        let (bh, bu) = match b {
            Some(b) => (b.hash_containers, b.unwraps),
            None => {
                out.push(Diagnostic {
                    path: budget_path.to_string(),
                    line: 1,
                    rule: NAME,
                    message: format!(
                        "crate `{krate}` has no budget entry (measured: {} hash containers, \
                         {} unwraps); run `ssor-lint --bless` to record it",
                        c.hash_containers, c.unwraps
                    ),
                });
                continue;
            }
        };
        for (metric, have, max) in [
            ("hash_containers", c.hash_containers, bh),
            ("unwraps", c.unwraps, bu),
        ] {
            if have > max {
                out.push(Diagnostic {
                    path: budget_path.to_string(),
                    line: 1,
                    rule: NAME,
                    message: format!(
                        "crate `{krate}` exceeds its `{metric}` budget: {have} > {max} — \
                         remove the new uses (HashMap iteration order and unwrap panics \
                         both erode the determinism contract) or justify raising the \
                         budget in review"
                    ),
                });
            } else if have < max {
                notes.push(format!(
                    "note: crate `{krate}` is under its `{metric}` budget ({have} < {max}); \
                     run `ssor-lint --bless` to tighten the ratchet"
                ));
            }
        }
    }
    for krate in budget.keys() {
        if !counts.contains_key(krate) {
            notes.push(format!(
                "note: budget entry `{krate}` matches no crate in the workspace; \
                 run `ssor-lint --bless` to drop it"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn counting_ignores_comments_strings_and_allowed_lines() {
        let src = "use std::collections::HashMap;\n\
                   // HashMap in a comment, .unwrap() too\n\
                   let s = \"HashSet\";\n\
                   let x = opt.unwrap();\n\
                   let m: HashMap<u32, HashSet<u32>> = HashMap::new(); // lint: allow(ratchet)\n";
        let f = scan_source("crates/x/src/a.rs", src);
        let c = count_file(&f);
        assert_eq!(c.hash_containers, 1);
        assert_eq!(c.unwraps, 1);
    }

    #[test]
    fn crate_mapping() {
        assert_eq!(
            crate_of("crates/graph/src/par.rs").as_deref(),
            Some("ssor-graph")
        );
        assert_eq!(
            crate_of("crates/bench/src/bin/e1.rs").as_deref(),
            Some("ssor-bench")
        );
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("ssor"));
        assert_eq!(crate_of("crates/graph/tests/t.rs"), None);
        assert_eq!(crate_of("tests/determinism.rs"), None);
        assert_eq!(crate_of("examples/quickstart.rs"), None);
    }

    #[test]
    fn ratchet_semantics() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "ssor-a".to_string(),
            Counts {
                hash_containers: 3,
                unwraps: 1,
            },
        );
        counts.insert(
            "ssor-new".to_string(),
            Counts {
                hash_containers: 0,
                unwraps: 2,
            },
        );
        let mut budget = BTreeMap::new();
        budget.insert(
            "ssor-a".to_string(),
            Counts {
                hash_containers: 2,
                unwraps: 5,
            },
        );
        budget.insert("ssor-gone".to_string(), Counts::default());
        let (mut out, mut notes) = (Vec::new(), Vec::new());
        check_counts("lint_budget.json", &counts, &budget, &mut out, &mut notes);
        // ssor-a: hash overrun + unwrap under-budget note; ssor-new:
        // missing entry; ssor-gone: stale note.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("exceeds its `hash_containers`"));
        assert!(out[1].message.contains("no budget entry"));
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("tighten"));
        assert!(notes[1].contains("matches no crate"));
    }
}
