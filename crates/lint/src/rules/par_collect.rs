//! Rule `par_collect`: parallel fan-out rides the workspace's ordered
//! primitives, not raw rayon collection.
//!
//! **Why.** Every guarantee the engine publishes — bit-identical
//! reports at any thread count, steal order, or shard count — reduces
//! to one discipline: parallel stages must merge their partials in a
//! *fixed, input-derived order*. The workspace owns exactly two
//! primitives that encode it — `ssor_graph::par_ordered_map`
//! (input-order collect with a serial small-batch cutoff) and
//! `EdgeLoads::par_merge` (fixed `parts[0], parts[1], ...` per-edge
//! summation) — and `crates/graph/src/par.rs` is where that contract
//! is implemented, tested, and documented once. A raw
//! `par_iter().collect()` sprinkled anywhere else may happen to be
//! ordered today (rayon's indexed collect is), but it silently decays:
//! someone chains `.filter`, switches to a fold, or collects into a
//! map, and the bytes start depending on worker count with no test
//! pointing at the culprit.
//!
//! **Rule.** The adapters `.par_iter()`, `.par_iter_mut()`,
//! `.into_par_iter()`, `.par_bridge()`, and `.par_chunks(` may appear
//! only in `crates/graph/src/par.rs`. The two specialized dispatches
//! the par.rs docs name (`EdgeLoads::par_merge`'s fixed edge-range
//! reduction, `par_alpha_sample`'s chunked partial merge) carry
//! `// lint: allow(par_collect)` at their single fan-out line each —
//! the annotation marks exactly where a human verified the merge
//! order, and any new site must either ride the primitives or earn
//! the same review.

use super::{Diagnostic, FileClass};
use crate::scanner::SourceFile;

/// Rule name, as spelled in `lint: allow(...)`.
pub const NAME: &str = "par_collect";

const ADAPTERS: [&str; 5] = [
    ".par_iter()",
    ".par_iter_mut()",
    ".into_par_iter()",
    ".par_bridge()",
    ".par_chunks(",
];

/// Scans one file for raw rayon fan-out outside the par module.
pub fn check(file: &SourceFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    if class.is_par_module {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.allows(NAME) {
            continue;
        }
        for adapter in ADAPTERS {
            if line.code.contains(adapter) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: NAME,
                    message: format!(
                        "raw rayon fan-out `{}` outside crates/graph/src/par.rs: collection \
                         order is unguarded there; ride ssor_graph::par_ordered_map or \
                         EdgeLoads::par_merge (thread-count-invariant merges)",
                        adapter.trim_end_matches('(')
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn fires_outside_par_module_only() {
        let src = "let v: Vec<_> = items.par_iter().map(f).collect();\n\
                   let w: Vec<_> = items.into_par_iter().collect();\n";
        let f = scan_source("crates/flow/src/x.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/flow/src/x.rs"), &mut out);
        assert_eq!(out.len(), 2);

        let f = scan_source("crates/graph/src/par.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/graph/src/par.rs"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn allow_marks_a_reviewed_merge() {
        let src = "// lint: allow(par_collect)\nlet p: Vec<_> = r.par_iter().map(f).collect();\n";
        let f = scan_source("crates/graph/src/load.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/graph/src/load.rs"), &mut out);
        assert!(out.is_empty());
    }
}
