//! Rule `float_ord`: total float orders only — no `partial_cmp` in
//! comparison plumbing.
//!
//! **Why.** Congestion values, path lengths, and sampling weights are
//! `f64`s that flow through sorts, max-selections, and binary heaps on
//! every hot path. `partial_cmp(...).unwrap()` panics the moment a NaN
//! reaches the comparator — and a NaN *can* reach it: a poisoned edge
//! weight or an overflowed penalty term surfaces not where it was
//! produced but three layers later, mid-decompose or mid-KSP, as an
//! unwrap panic with no trace of the source (exactly the failure mode
//! PR 5 fixed in the ECMP/electrical templates). The NaN-tolerant
//! variants are no better: `unwrap_or(Ordering::Equal)` makes the
//! comparison order — and therefore the selected path, and therefore
//! the serialized report — depend on traversal order, which is the
//! determinism contract's quietest failure. `f64::total_cmp` is the
//! IEEE-754 `totalOrder`: deterministic for every bit pattern,
//! NaN included, and branch-free.
//!
//! **Rule.** `.partial_cmp(` may not be called in workspace code; use
//! `total_cmp`. A `sort_by`/`max_by`/`min_by` closure that unwraps a
//! partial order on the same line gets a sharper message naming the
//! combinator. `// lint: allow(float_ord)` exempts a line — legitimate
//! only for non-float `PartialOrd` plumbing, which this token-level
//! pass cannot distinguish from float comparisons.

use super::{Diagnostic, FileClass};
use crate::scanner::SourceFile;

/// Rule name, as spelled in `lint: allow(...)`.
pub const NAME: &str = "float_ord";

const COMBINATORS: [&str; 6] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
];

/// Scans one file for `.partial_cmp(` calls.
pub fn check(file: &SourceFile, _class: &FileClass, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.allows(NAME) || !line.code.contains(".partial_cmp(") {
            continue;
        }
        let combinator = COMBINATORS
            .iter()
            .find(|c| line.code.contains(&format!(".{c}(")));
        let message = match combinator {
            Some(c) if line.code.contains("unwrap") => format!(
                "`{c}` closure unwraps a partial order: a single NaN panics mid-comparison \
                 sort; use `total_cmp` (IEEE-754 totalOrder, deterministic for every bit \
                 pattern)"
            ),
            _ => "`.partial_cmp(` on a float expression: NaN returns `None` (panic or \
                  order-dependent fallback); use `total_cmp`"
                .to_string(),
        };
        out.push(Diagnostic {
            path: file.path.clone(),
            line: idx + 1,
            rule: NAME,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn plain_call_and_combinator_variant() {
        let src = "let o = a.partial_cmp(&b);\n\
                   v.max_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   let t = a.total_cmp(&b);\n\
                   fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n";
        let f = scan_source("x.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("x.rs"), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("total_cmp"));
        assert!(out[1].message.contains("max_by"));
    }

    #[test]
    fn allow_annotation_for_non_float_plumbing() {
        let src = "// lint: allow(float_ord)\nself.key.partial_cmp(&other.key)\n";
        let f = scan_source("x.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("x.rs"), &mut out);
        assert!(out.is_empty());
    }
}
