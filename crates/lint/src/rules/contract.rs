//! Rules `hot_panic` / `hot_alloc`: transitive contracts over the call
//! graph for the entry points declared in `lint_contracts.json`.
//!
//! **Why.** The serving plane's north star is answering millions of
//! lookups per second; the sweep plane saturates many-core boxes for
//! hours. On those paths, two token classes that are fine elsewhere
//! become outages: a quiet panic idiom (`.unwrap()`, `panic!`, slice
//! `[i]`) takes a whole query shard down for *one* bad request, and a
//! per-request allocation (`.push` growth, `.collect`, `format!`) turns
//! a sub-microsecond table lookup into allocator traffic that dominates
//! the latency budget. The flat token rules cannot express "fine in a
//! test helper, fatal in the query plane" — reachability can, which is
//! what the call graph ([`crate::callgraph`]) provides.
//!
//! **`hot_panic`.** No `panic!` / `.unwrap()` / `.expect(` /
//! `unreachable!` / `todo!` / `unimplemented!` / slice indexing `[i]`
//! anywhere in the entry's transitive closure. `assert!` family macros
//! are deliberately *not* banned: they are loud invariant guards on
//! configuration (batch shape, alpha), not quiet per-request hazards —
//! a documented under-approximation.
//!
//! **`hot_alloc`.** No `Vec::new` / `vec!` / `.push(` / `.collect` /
//! `format!` / `.to_vec(` / `.to_string(` / `.to_owned(` /
//! `String::new` / `Box::new` in the closure. `Vec::with_capacity` is
//! deliberately allowed: an explicit-capacity allocation is a visible,
//! auditable *per-batch* cost, and the rule's job is to catch
//! growth-by-push and implicit collection on the *per-request* path.
//!
//! **Escape hatch.** `// lint: allow(hot_panic)` / `allow(hot_alloc)`
//! on the offending line — per-batch setup (one `Vec::with_capacity`
//! fill per shard), deliberate loud invariants, and conservative-taint
//! bystanders are the legitimate uses; each allow should carry a why in
//! the adjacent comment.

use super::Diagnostic;
use crate::callgraph::CallGraph;
use crate::contracts::Entry;
use crate::rules::ratchet::crate_of;
use crate::scanner::{count_word, index_brackets, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Rule name for the panic-freedom contract.
pub const HOT_PANIC: &str = "hot_panic";
/// Rule name for the allocation-discipline contract.
pub const HOT_ALLOC: &str = "hot_alloc";
/// Every contract rule family `lint_contracts.json` may reference.
pub const RULES: [&str; 2] = [HOT_PANIC, HOT_ALLOC];

/// Panic-idiom tokens (matched on blanked code).
const PANIC_TOKENS: [&str; 6] = [
    "panic!",
    ".unwrap()",
    ".expect(",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Per-request allocation tokens (matched on blanked code).
const ALLOC_TOKENS: [&str; 10] = [
    "Vec::new",
    "vec!",
    ".push(",
    ".collect",
    "format!",
    ".to_vec(",
    ".to_string(",
    ".to_owned(",
    "String::new",
    "Box::new",
];

/// Tokens of `rule` present in one blanked code line.
fn tokens_in(rule: &str, code: &str) -> Vec<String> {
    let mut found = Vec::new();
    let list: &[&str] = if rule == HOT_PANIC {
        &PANIC_TOKENS
    } else {
        &ALLOC_TOKENS
    };
    for tok in list {
        if count_word(code, tok) > 0 {
            found.push((*tok).to_string());
        }
    }
    if rule == HOT_PANIC && index_brackets(code) > 0 {
        found.push("[..] indexing".to_string());
    }
    found
}

/// Checks every declared contract entry against the call graph.
///
/// `files` maps workspace-relative paths to their scanned sources (for
/// body-line token scans and `allow` annotations); `contracts_label` is
/// the diagnostics anchor for entry-resolution failures.
pub fn check(
    contracts_label: &str,
    contracts: &BTreeMap<String, Entry>,
    graph: &CallGraph,
    files: &BTreeMap<String, SourceFile>,
    out: &mut Vec<Diagnostic>,
) {
    // One report per (site, rule), first entry (in sorted order) wins.
    let mut reported: BTreeSet<(String, usize, &'static str, String)> = BTreeSet::new();
    for (name, entry) in contracts {
        let matches: Vec<usize> = (0..graph.fns.len())
            .filter(|&i| {
                let f = &graph.fns[i];
                if f.is_test || crate_of(&f.path).as_deref() != Some(entry.krate.as_str()) {
                    return false;
                }
                match name.split_once("::") {
                    Some((ty, simple)) => f.name == simple && f.type_name.as_deref() == Some(ty),
                    None => f.name == *name,
                }
            })
            .collect();
        if matches.is_empty() {
            out.push(Diagnostic {
                path: contracts_label.to_string(),
                line: 1,
                rule: HOT_PANIC,
                message: format!(
                    "contract entry `{name}` matches no function in crate `{}` — renamed or \
                     removed? update {contracts_label} so the gate keeps firing",
                    entry.krate
                ),
            });
            continue;
        }
        for rule in &entry.rules {
            let rule_name: &'static str = if rule == HOT_PANIC {
                HOT_PANIC
            } else {
                HOT_ALLOC
            };
            for &root in &matches {
                let parents = graph.reachable(root);
                for &fidx in parents.keys() {
                    let f = &graph.fns[fidx];
                    let Some((body_start, body_end)) = f.body else {
                        continue;
                    };
                    let Some(src) = files.get(&f.path) else {
                        continue;
                    };
                    for lineno in body_start..=body_end {
                        let Some(line) = src.lines.get(lineno - 1) else {
                            continue;
                        };
                        if line.allows(rule_name) {
                            continue;
                        }
                        for tok in tokens_in(rule_name, &line.code) {
                            let key = (f.path.clone(), lineno, rule_name, tok.clone());
                            if !reported.insert(key) {
                                continue;
                            }
                            let chain = graph.chain(&parents, fidx);
                            let via = if chain.len() <= 1 {
                                String::new()
                            } else {
                                format!(" via {}", chain.join(" → "))
                            };
                            let fix = if rule_name == HOT_PANIC {
                                "return an Option/outcome instead, or annotate \
                                 `// lint: allow(hot_panic)` with a why"
                            } else {
                                "hoist the allocation to per-batch setup (with_capacity \
                                 scratch) or annotate `// lint: allow(hot_alloc)` with a why"
                            };
                            out.push(Diagnostic {
                                path: f.path.clone(),
                                line: lineno,
                                rule: rule_name,
                                message: format!(
                                    "`{tok}` in `{}` is reachable from hot entry `{name}` \
                                     ({}){via}: {fix}",
                                    graph.qualified(fidx),
                                    entry.why
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parser::parse_file;
    use crate::scanner::scan_source;

    fn setup(src: &str, contracts_json: &str) -> Vec<Diagnostic> {
        let path = "crates/serve/src/hot.rs";
        let file = scan_source(path, src);
        let graph = CallGraph::build(&[parse_file(&file)], &|_, _| true);
        let mut files = BTreeMap::new();
        files.insert(path.to_string(), file);
        let contracts = crate::contracts::from_json(contracts_json).unwrap();
        let mut out = Vec::new();
        check("lint_contracts.json", &contracts, &graph, &files, &mut out);
        out.sort();
        out
    }

    const CONTRACT: &str = r#"{ "entry": { "crate": "ssor-serve", "rules": ["hot_panic", "hot_alloc"], "why": "test" } }"#;

    #[test]
    fn transitive_panic_and_alloc_tokens_fire() {
        let out = setup(
            "pub fn entry(x: u32) -> u32 { helper(x) }\n\
             fn helper(x: u32) -> u32 { deep(x) }\n\
             fn deep(x: u32) -> u32 {\n    let v: Vec<u32> = (0..x).collect();\n    v[0]\n}\n",
            CONTRACT,
        );
        assert!(out.iter().any(|d| d.rule == "hot_alloc" && d.line == 4));
        assert!(out
            .iter()
            .any(|d| d.rule == "hot_panic" && d.line == 5 && d.message.contains("indexing")));
        assert!(
            out.iter()
                .any(|d| d.message.contains("entry → helper → deep")),
            "chain is reported: {out:?}"
        );
    }

    #[test]
    fn allow_lines_suppress_and_tests_never_taint() {
        let out = setup(
            "pub fn entry(x: u32) -> u32 { helper(x) }\n\
             fn helper(x: u32) -> u32 {\n\
                 x.checked_add(1).unwrap() // lint: allow(hot_panic)\n\
             }\n\
             #[cfg(test)]\nmod tests {\n    fn helper(x: u32) -> u32 { x.checked_add(1).unwrap() }\n}\n",
            CONTRACT,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unresolvable_entries_are_loud() {
        let out = setup("pub fn renamed_entry() {}\n", CONTRACT);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("matches no function"));
        assert_eq!(out[0].path, "lint_contracts.json");
    }

    #[test]
    fn typed_entries_resolve_through_impls() {
        let out = setup(
            "impl Table {\n\
                 pub fn sample(&self) -> u32 { self.row(0) }\n\
                 fn row(&self, i: usize) -> u32 { self.data[i] }\n\
             }\n",
            r#"{ "Table::sample": { "crate": "ssor-serve", "rules": ["hot_panic"], "why": "t" } }"#,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("Table::sample → Table::row"));
    }
}
