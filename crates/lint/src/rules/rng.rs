//! Rule `rng`: ban ambient-entropy RNG sources.
//!
//! **Why.** Every stochastic quantity in this reproduction — the α
//! sampled paths per pair (the paper's "few random paths"), FRT tree
//! draws, failure-trial knockouts, per-request serving replies — must
//! be a pure function of the run's master seed, because the test suite
//! and the sweep journal verify results *bit-identically* across thread
//! counts, steal orders, shard counts, and crash/resume splits. One
//! `thread_rng()` call anywhere in that dataflow makes the output
//! depend on ambient OS entropy: the determinism suites turn flaky in
//! the worst possible way (pass locally, fail in CI, unreproducible).
//!
//! **Rule.** The tokens `thread_rng`, `rand::random`, and
//! `from_entropy` may not appear in workspace code. All RNG streams
//! must be seeded `StdRng`s whose seeds derive from
//! `ssor_graph::derive_seed(master, index)` (or a documented
//! per-stream tag XOR), so any scheduler can hand any item its stream.
//!
//! **Escape hatch.** None in tree today. `// lint: allow(rng)` exists
//! for symmetry with the other rules but a use of it should not survive
//! review: there is no legitimate ambient entropy in this workspace.

use super::{Diagnostic, FileClass};
use crate::scanner::{contains_word, SourceFile};

/// Rule name, as spelled in `lint: allow(...)`.
pub const NAME: &str = "rng";

const BANNED: [(&str, &str); 3] = [
    (
        "thread_rng",
        "ambient OS entropy breaks bit-identical replay; seed a StdRng from ssor_graph::derive_seed",
    ),
    (
        "rand::random",
        "ambient OS entropy breaks bit-identical replay; seed a StdRng from ssor_graph::derive_seed",
    ),
    (
        "from_entropy",
        "ambient OS entropy breaks bit-identical replay; derive the seed from ssor_graph::derive_seed",
    ),
];

/// Scans one file for banned RNG sources.
pub fn check(file: &SourceFile, _class: &FileClass, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.allows(NAME) {
            continue;
        }
        for (token, why) in BANNED {
            if contains_word(&line.code, token) {
                out.push(Diagnostic {
                    path: file.path.clone(),
                    line: idx + 1,
                    rule: NAME,
                    message: format!("banned RNG source `{token}`: {why}"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn fires_on_each_banned_token_but_not_comments_or_strings() {
        let src = "let a = thread_rng();\n\
                   let b: u8 = rand::random();\n\
                   let c = StdRng::from_entropy();\n\
                   // thread_rng mentioned in a comment\n\
                   let d = \"thread_rng\";\n\
                   let e = my_thread_rng_like();\n";
        let f = scan_source("x.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("x.rs"), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 2);
        assert_eq!(out[2].line, 3);
    }
}
