//! Rule `wall_clock`: contain wall-clock reads, keep them out of
//! serialized report bytes.
//!
//! **Why.** Wall time is the one nondeterminism the workspace cannot
//! derive from a seed. It is legitimate in exactly one role: filling
//! `*Stats.wall`-style observability fields (solver timing splits,
//! template build stages, the perf harness) that are *excluded* from
//! every serialized report. The sweep journal, the golden-report
//! fixtures, and crash/resume splicing all require reports to
//! serialize to the same bytes on every run — one `Instant::now()`
//! that leaks into a serialized field silently breaks steal-order
//! invariance verification for every downstream consumer.
//!
//! **Rule.** `Instant::now` and `SystemTime` may appear only on lines
//! carrying `// lint: allow(wall_clock)` (put the annotation where the
//! clock is read, with the measured quantity's sink named nearby).
//! Perf-harness code — `crates/bench/` and `benches/` directories — is
//! exempt wholesale: measuring wall time is its entire job.
//!
//! **Cross-check.** In schema files (`report_json.rs`), every
//! serialized field name — a string literal in `("name", value)`
//! position — is checked against wall-clock-ish vocabulary (`wall`,
//! `elapsed`, `duration`, `secs`, `nanos`, `timestamp`). The schema
//! comments promise timings never reach report bytes; this makes the
//! promise structural: adding a `("wall", ...)` field to a report tree
//! fails the lint even though no clock is read in that file.

use super::{Diagnostic, FileClass};
use crate::scanner::SourceFile;

/// Rule name, as spelled in `lint: allow(...)`.
pub const NAME: &str = "wall_clock";

const BANNED: [&str; 2] = ["Instant::now", "SystemTime"];

/// Field-name vocabulary that indicates a timing is being serialized.
const TIMING_FIELD_WORDS: [&str; 6] = ["wall", "elapsed", "duration", "secs", "nanos", "timestamp"];

/// Scans one file for unannotated wall-clock reads, and schema files
/// for timing-named serialized fields.
pub fn check(file: &SourceFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !class.wall_clock_exempt && !line.allows(NAME) {
            for token in BANNED {
                if line.code.contains(token) {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: idx + 1,
                        rule: NAME,
                        message: format!(
                            "wall-clock read `{token}` without `// lint: allow(wall_clock)`: \
                             wall time may feed *Stats.wall observability fields, never \
                             serialized report bytes"
                        ),
                    });
                }
            }
        }
        if class.is_report_schema && !line.allows(NAME) {
            for lit in &line.literals {
                let is_field_name = lit.prev == Some('(') && lit.next == Some(',');
                if !is_field_name {
                    continue;
                }
                let lower = lit.content.to_lowercase();
                if TIMING_FIELD_WORDS.iter().any(|w| lower.contains(w)) {
                    out.push(Diagnostic {
                        path: file.path.clone(),
                        line: idx + 1,
                        rule: NAME,
                        message: format!(
                            "serialized field `{}` looks like a timing: reports must stay a \
                             pure function of the spec (bit-identical across runs), so \
                             wall-clock data may not reach report bytes",
                            lit.content
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    #[test]
    fn unannotated_clock_reads_fire_annotated_do_not() {
        let src = "let t0 = Instant::now();\n\
                   let t1 = Instant::now(); // lint: allow(wall_clock)\n\
                   let t2 = SystemTime::now();\n";
        let f = scan_source("crates/x/src/a.rs", src);
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/x/src/a.rs"), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn bench_paths_are_exempt() {
        let f = scan_source("crates/bench/src/lib.rs", "let t = Instant::now();\n");
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/bench/src/lib.rs"), &mut out);
        assert!(out.is_empty());
        let f = scan_source("crates/x/benches/b.rs", "let t = Instant::now();\n");
        let mut out = Vec::new();
        check(&f, &FileClass::of("crates/x/benches/b.rs"), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn schema_field_cross_check() {
        let src = "obj(vec![(\"iterations\", v), (\"total_wall\", w)])\n\
                   assert!(!json.contains(\"wall\"));\n";
        let f = scan_source("crates/engine/src/report_json.rs", src);
        let mut out = Vec::new();
        check(
            &f,
            &FileClass::of("crates/engine/src/report_json.rs"),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("total_wall"));
    }
}
