//! The determinism rulebook.
//!
//! Each submodule is one rule family, documented inline with the
//! *why*: which workspace guarantee the rule protects and what breaking
//! it silently costs. Every rule reports [`Diagnostic`]s in a single
//! byte-stable format (`path:line: rule: message`) so golden tests can
//! pin the output and CI diffs stay readable.
//!
//! Escape hatch: a `// lint: allow(rule)` comment on the offending line
//! (or on a standalone comment line directly above it) silences that
//! rule for that line. Allows are deliberately per-line, never per-file:
//! every exemption stays visible next to the code it excuses.

pub mod contract;
pub mod float_ord;
pub mod par_collect;
pub mod ratchet;
pub mod rng;
pub mod unsafe_code;
pub mod wall_clock;

/// One rule violation, pointing at a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule family name (the same name `lint: allow(...)` takes).
    pub rule: &'static str,
    /// Human-readable description of the violation and the fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Path-derived facts the per-file rules condition on.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// `src/lib.rs` or `src/main.rs` — a crate root that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Perf-harness code (`crates/bench/` or a `benches/` dir): exempt
    /// from the wall-clock ban, since measuring wall time is its job.
    pub wall_clock_exempt: bool,
    /// `crates/graph/src/par.rs`, the one module allowed to touch raw
    /// rayon collection (it *implements* the ordered primitives).
    pub is_par_module: bool,
    /// A `report_json.rs` schema file: serialized field names get the
    /// wall-clock cross-check.
    pub is_report_schema: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (must use `/` separators).
    pub fn of(rel_path: &str) -> FileClass {
        let in_bench_crate = rel_path.starts_with("crates/bench/");
        let in_benches_dir = rel_path.contains("/benches/") || rel_path.starts_with("benches/");
        FileClass {
            rel_path: rel_path.to_string(),
            is_crate_root: rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs"),
            wall_clock_exempt: in_bench_crate || in_benches_dir,
            is_par_module: rel_path == "crates/graph/src/par.rs",
            is_report_schema: rel_path.ends_with("report_json.rs"),
        }
    }
}

/// Runs every per-file rule (everything except the cross-file
/// [`ratchet`]) on one scanned source file.
pub fn check_file(file: &crate::scanner::SourceFile, class: &FileClass, out: &mut Vec<Diagnostic>) {
    rng::check(file, class, out);
    wall_clock::check(file, class, out);
    float_ord::check(file, class, out);
    par_collect::check(file, class, out);
    unsafe_code::check(file, class, out);
}
