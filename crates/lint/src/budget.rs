//! The committed ratchet baseline: `lint_budget.json` parse and emit.
//!
//! The checker is dependency-free by design (see `Cargo.toml`), so the
//! budget file is a *restricted* JSON subset handled by hand: one
//! top-level object mapping crate names to `{"hash_containers": N,
//! "indexing": N, "panics": N, "unwraps": N}` objects, with
//! non-negative integer values. The emitter is byte-stable — sorted
//! keys (via `BTreeMap`), two-space indent, trailing newline — so
//! `--bless` produces minimal diffs and the file can be asserted
//! byte-for-byte in tests. The same restricted [`Parser`] also reads
//! `lint_contracts.json` (see [`crate::contracts`]).

use crate::rules::ratchet::Counts;
use std::collections::BTreeMap;
use std::io;

/// Serializes a budget map in the canonical byte-stable layout.
pub fn to_json(budget: &BTreeMap<String, Counts>) -> String {
    let mut out = String::from("{\n");
    for (i, (krate, c)) in budget.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{ \"hash_containers\": {}, \"indexing\": {}, \"panics\": {}, \"unwraps\": {} }}{}\n",
            krate,
            c.hash_containers,
            c.indexing,
            c.panics,
            c.unwraps,
            if i + 1 < budget.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Parses the restricted budget JSON. Rejects anything outside the
/// schema (unknown metric keys, non-integer values, duplicate crates)
/// so a hand-edited file fails loudly rather than silently ratcheting
/// against garbage.
pub fn from_json(text: &str) -> io::Result<BTreeMap<String, Counts>> {
    const LABEL: &str = "lint_budget.json";
    let mut p = Parser::new(text, LABEL);
    let mut budget = BTreeMap::new();
    p.object(
        &mut budget,
        |p, budget: &mut BTreeMap<String, Counts>, krate| {
            let mut c = Counts::default();
            let mut seen = [false; 4];
            p.object(&mut c, |p, c: &mut Counts, key| {
                let v = p.integer()?;
                match key.as_str() {
                    "hash_containers" if !seen[0] => {
                        seen[0] = true;
                        c.hash_containers = v;
                    }
                    "indexing" if !seen[1] => {
                        seen[1] = true;
                        c.indexing = v;
                    }
                    "panics" if !seen[2] => {
                        seen[2] = true;
                        c.panics = v;
                    }
                    "unwraps" if !seen[3] => {
                        seen[3] = true;
                        c.unwraps = v;
                    }
                    other => {
                        return Err(bad(
                            LABEL,
                            &format!("unknown or duplicate metric `{other}`"),
                        ))
                    }
                }
                Ok(())
            })?;
            if !seen.iter().all(|&s| s) {
                return Err(bad(LABEL, &format!("crate `{krate}` is missing a metric")));
            }
            if budget.insert(krate.clone(), c).is_some() {
                return Err(bad(LABEL, &format!("duplicate crate `{krate}`")));
            }
            Ok(())
        },
    )?;
    p.finish()?;
    Ok(budget)
}

/// An error in a committed lint data file (`{label}: {msg}`).
pub(crate) fn bad(label: &str, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{label}: {msg}"))
}

/// Hand-rolled parser for the restricted JSON subset the lint's
/// committed data files use (objects, arrays, strings without escapes,
/// non-negative integers).
pub(crate) struct Parser {
    chars: Vec<char>,
    pos: usize,
    label: &'static str,
}

impl Parser {
    pub(crate) fn new(text: &str, label: &'static str) -> Parser {
        Parser {
            chars: text.chars().collect(),
            pos: 0,
            label,
        }
    }

    fn bad(&self, msg: &str) -> io::Error {
        bad(self.label, msg)
    }

    pub(crate) fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    /// Errors unless the input is fully consumed (modulo whitespace).
    pub(crate) fn finish(&mut self) -> io::Result<()> {
        self.skip_ws();
        if self.pos < self.chars.len() {
            return Err(self.bad("trailing data after the top-level object"));
        }
        Ok(())
    }

    fn expect(&mut self, c: char) -> io::Result<()> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.bad(&format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.chars.get(self.pos)
            )))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    pub(crate) fn string(&mut self) -> io::Result<String> {
        self.expect('"')?;
        let mut s = String::new();
        while let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            match c {
                '"' => return Ok(s),
                '\\' => return Err(self.bad("escapes are not part of the schema")),
                _ => s.push(c),
            }
        }
        Err(self.bad("unterminated string"))
    }

    pub(crate) fn integer(&mut self) -> io::Result<usize> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.bad(&format!("expected an integer at offset {start}")));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|_| self.bad(&format!("integer out of range: {text}")))
    }

    /// Parses `{ "key": <entry>, ... }`, handing each key to `entry`.
    pub(crate) fn object<T>(
        &mut self,
        acc: &mut T,
        mut entry: impl FnMut(&mut Parser, &mut T, &String) -> io::Result<()>,
    ) -> io::Result<()> {
        self.expect('{')?;
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(':')?;
            entry(self, acc, &key)?;
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(self.bad(&format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }

    /// Parses `[ <elem>, ... ]`, handing the parser to `elem` per
    /// element.
    pub(crate) fn array(
        &mut self,
        mut elem: impl FnMut(&mut Parser) -> io::Result<()>,
    ) -> io::Result<()> {
        self.expect('[')?;
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            elem(self)?;
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(self.bad(&format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<String, Counts> {
        let mut b = BTreeMap::new();
        b.insert(
            "ssor-graph".to_string(),
            Counts {
                hash_containers: 12,
                indexing: 7,
                panics: 2,
                unwraps: 30,
            },
        );
        b.insert(
            "ssor".to_string(),
            Counts {
                hash_containers: 0,
                indexing: 0,
                panics: 0,
                unwraps: 1,
            },
        );
        b
    }

    #[test]
    fn round_trips_byte_stably() {
        let b = sample();
        let json = to_json(&b);
        assert_eq!(from_json(&json).unwrap(), b);
        assert_eq!(to_json(&from_json(&json).unwrap()), json);
        assert!(json.starts_with(
            "{\n  \"ssor\": { \"hash_containers\": 0, \"indexing\": 0, \"panics\": 0, \"unwraps\": 1 },\n"
        ));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(from_json("{").is_err());
        assert!(from_json("{ \"a\": { \"hash_containers\": 1 } }").is_err());
        assert!(from_json(
            "{ \"a\": { \"hash_containers\": 1, \"indexing\": 0, \"panics\": 0, \"unwraps\": -1 } }"
        )
        .is_err());
        assert!(from_json(
            "{ \"a\": { \"hash_containers\": 1, \"indexing\": 0, \"panics\": 0, \"unwraps\": 2, \
             \"extra\": 3 } }"
        )
        .is_err());
        assert!(from_json("{ \"a\": { \"unwraps\": 1, \"unwraps\": 2 } }").is_err());
        assert!(from_json("{}").is_ok());
    }
}
