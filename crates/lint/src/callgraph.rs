//! The approximate intra-workspace call graph.
//!
//! Nodes are the [`crate::parser::FnDef`]s of every *library* source
//! file (`crates/*/src/**` and the facade `src/**`, excluding
//! `src/bin/**` — binary targets cannot be linked as callees of library
//! code, so admitting them would only manufacture false edges from
//! same-named helpers). Edges come from name-based resolution,
//! sharpened four ways and blunted deliberately everywhere else:
//!
//! - `.name(args)` resolves to every workspace method called `name`;
//! - `Type::name(args)` resolves to methods/assoc fns of `Type` when
//!   `Type` is a workspace impl subject (with `Self` rewritten to the
//!   caller's impl subject); a *foreign* type qualifier (`Arc::new`,
//!   `Vec::with_capacity`, `io::Error::new`) resolves to **nothing** —
//!   chasing it to every same-named workspace function would taint the
//!   whole tree through one `Arc::new`. A lowercase qualifier is a
//!   module path, so `module::name(args)` resolves to free functions
//!   called `name`;
//! - `name(args)` resolves to free functions called `name`;
//! - when the call site's argument count is computable (no closure
//!   literal among the arguments), candidates whose parameter count
//!   cannot accept it are dropped — a same-named function the call
//!   could not compile against is not a callee. When every candidate
//!   mismatches, the call is foreign (std shares our method names) and
//!   resolves to nothing. An incomputable arity skips the filter.
//! - the caller must be able to *link* the callee: an edge is kept
//!   only when `may_call(caller_path, callee_path)` holds. The runner
//!   wires this to the Cargo dependency closure, so the serving plane
//!   can never "call into" the lint or bench tooling that merely
//!   reuses a method name.
//!
//! Within those rules ambiguity still taints every candidate
//! (over-approximation: a contract violation in any admissible
//! same-named function is reported), while calls into std/vendored
//! code resolve to nothing and are covered by the token rules at the
//! call site instead (under-approximation, documented in
//! `ARCHITECTURE.md`). Test functions (`#[cfg(test)]` modules,
//! `#[test]` attrs) are never candidates: a test helper's `.unwrap()`
//! cannot taint the serving plane.

use crate::parser::{CallKind, FnDef, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// The workspace call graph: all library functions plus resolved,
/// sorted, deduplicated adjacency.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function, in (file, source) order.
    pub fns: Vec<FnDef>,
    /// `edges[i]` = indices of the functions `fns[i]` may call.
    edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from per-file parses (one entry per library
    /// file, in sorted path order for determinism). `may_call` is the
    /// linkability oracle: an edge from a function in `caller_path` to
    /// one in `callee_path` is kept only when it returns `true` (the
    /// runner wires it to the Cargo dependency closure; tests pass
    /// `&|_, _| true`).
    pub fn build(parsed: &[ParsedFile], may_call: &dyn Fn(&str, &str) -> bool) -> CallGraph {
        let mut fns: Vec<FnDef> = Vec::new();
        // (file index, local fn index) -> global index.
        let mut base = Vec::with_capacity(parsed.len());
        for p in parsed {
            base.push(fns.len());
            fns.extend(p.fns.iter().cloned());
        }

        // Candidate indices by simple name, split by shape, plus the
        // set of impl/trait subjects the workspace defines (a `Type::`
        // qualifier outside this set is foreign).
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut subjects: BTreeSet<&str> = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if let Some(t) = &f.type_name {
                subjects.insert(t);
                methods.entry(&f.name).or_default().push(i);
            } else {
                free.entry(&f.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (file_idx, p) in parsed.iter().enumerate() {
            for call in &p.calls {
                let caller = base[file_idx] + call.caller;
                let caller_type = fns[caller].type_name.clone();
                let name = call.name.as_str();
                let mut cands: Vec<usize> = match &call.kind {
                    CallKind::Method => methods.get(name).cloned().unwrap_or_default(),
                    CallKind::Free => free.get(name).cloned().unwrap_or_default(),
                    CallKind::Path(qual) => {
                        let qual = if qual == "Self" {
                            caller_type.as_deref().unwrap_or("Self")
                        } else {
                            qual.as_str()
                        };
                        if subjects.contains(qual) {
                            // One of ours: exactly the subject's items.
                            methods
                                .get(name)
                                .map(|v| {
                                    v.iter()
                                        .copied()
                                        .filter(|&i| fns[i].type_name.as_deref() == Some(qual))
                                        .collect()
                                })
                                .unwrap_or_default()
                        } else if qual.starts_with(|c: char| c.is_lowercase() || c == '_') {
                            // Module path: a qualified free-function call.
                            free.get(name).cloned().unwrap_or_default()
                        } else {
                            // Foreign type (Arc, Vec, io::Error, ...):
                            // the token rules cover the call site.
                            Vec::new()
                        }
                    }
                };
                if let Some(arity) = call.arity {
                    cands.retain(|&i| arity_matches(&fns[i], &call.kind, arity));
                }
                cands.retain(|&i| may_call(&fns[caller].path, &fns[i].path));
                edges[caller].extend(cands);
            }
        }
        for adj in &mut edges {
            adj.sort_unstable();
            adj.dedup();
        }
        CallGraph { fns, edges }
    }

    /// BFS from `entry`: every reachable function index mapped to its
    /// BFS parent (`entry` maps to itself). Deterministic — adjacency is
    /// sorted and visitation is first-wins.
    pub fn reachable(&self, entry: usize) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        parent.insert(entry, entry);
        let mut queue = std::collections::VecDeque::from([entry]);
        while let Some(i) = queue.pop_front() {
            for &j in self.edges.get(i).map(Vec::as_slice).unwrap_or(&[]) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(j) {
                    e.insert(i);
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// The call chain `entry → … → target` as qualified names, read off
    /// the BFS parent map.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter().map(|i| self.qualified(i)).collect()
    }

    /// `Type::name` or `name` for display.
    pub fn qualified(&self, i: usize) -> String {
        let f = &self.fns[i];
        match &f.type_name {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

/// Whether a candidate's parameter shape is compatible with a call
/// site's computed argument count.
fn arity_matches(f: &FnDef, kind: &CallKind, arity: usize) -> bool {
    match kind {
        // `.name(k args)` supplies the receiver implicitly.
        CallKind::Method => f.params == arity,
        CallKind::Free => f.params == arity,
        // `Type::name(k args)`: assoc-fn style (k params) or UFCS with
        // an explicit receiver (k-1 params + self).
        CallKind::Path(_) => {
            if f.has_self {
                f.params == arity || f.params + 1 == arity
            } else {
                f.params == arity
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::scanner::scan_source;

    fn graph(srcs: &[&str]) -> CallGraph {
        let parsed: Vec<ParsedFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| parse_file(&scan_source(&format!("crates/x/src/f{i}.rs"), s)))
            .collect();
        CallGraph::build(&parsed, &|_, _| true)
    }

    fn idx(g: &CallGraph, q: &str) -> usize {
        (0..g.fns.len())
            .find(|&i| g.qualified(i) == q)
            .unwrap_or_else(|| panic!("no fn {q}"))
    }

    #[test]
    fn transitive_reachability_crosses_files() {
        let g = graph(&[
            "fn entry() { middle(1); }\nfn middle(x: u32) { leaf(x, x); }\n",
            "fn leaf(a: u32, b: u32) -> u32 { a + b }\n",
        ]);
        let r = g.reachable(idx(&g, "entry"));
        assert!(r.contains_key(&idx(&g, "leaf")));
        assert_eq!(
            g.chain(&r, idx(&g, "leaf")),
            vec!["entry", "middle", "leaf"]
        );
    }

    #[test]
    fn method_calls_taint_all_same_named_methods() {
        let g = graph(&[
            "fn entry(x: &Foo) { x.get(1); }\n",
            "impl Foo { fn get(&self, i: usize) -> u32 { self.v[i] } }\n\
             impl Bar { fn get(&self, i: usize) -> u32 { 0 } }\n\
             impl Baz { fn get(&self, a: usize, b: usize) -> u32 { 0 } }\n",
        ]);
        let r = g.reachable(idx(&g, "entry"));
        assert!(r.contains_key(&idx(&g, "Foo::get")), "same arity taints");
        assert!(r.contains_key(&idx(&g, "Bar::get")), "ambiguity taints");
        assert!(
            !r.contains_key(&idx(&g, "Baz::get")),
            "arity filter excludes the 2-arg get"
        );
    }

    #[test]
    fn typed_path_calls_prefer_the_subject_type() {
        let g = graph(&["fn entry() { Foo::make(); }\n\
             impl Foo { fn make() -> Foo { Foo } }\n\
             impl Bar { fn make() -> Bar { Bar } }\n"]);
        let r = g.reachable(idx(&g, "entry"));
        assert!(r.contains_key(&idx(&g, "Foo::make")));
        assert!(!r.contains_key(&idx(&g, "Bar::make")));
    }

    #[test]
    fn test_fns_are_never_candidates() {
        let g = graph(&["fn entry() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { boom(); }\n}\n"]);
        let r = g.reachable(idx(&g, "entry"));
        assert_eq!(r.len(), 1, "only the entry itself: {r:?}");
    }

    #[test]
    fn arity_mismatch_means_the_callee_is_foreign() {
        // A call the lone same-named candidate could not compile
        // against is a call to something else (std shares our names);
        // an incomputable arity (closure argument) keeps the edge.
        let g = graph(&["fn entry() { helper(1, 2, 3); }\n\
             fn entry2() { helper(|x| x); }\n\
             fn helper(a: u32) -> u32 { a }\n"]);
        let r = g.reachable(idx(&g, "entry"));
        assert!(!r.contains_key(&idx(&g, "helper")), "3 args into 1 param");
        let r2 = g.reachable(idx(&g, "entry2"));
        assert!(r2.contains_key(&idx(&g, "helper")), "closure blinds arity");
    }

    #[test]
    fn foreign_type_quals_resolve_to_nothing() {
        // `Arc::new` must not taint every workspace `new`; a lowercase
        // qualifier is a module path and still reaches free fns.
        let g = graph(&[
            "fn entry() { let _ = Arc::new(1); helpers::make(2); }\n",
            "impl Foo { pub fn new(x: u32) -> Foo { Foo } }\n\
             pub fn make(x: u32) -> u32 { x }\n",
        ]);
        let r = g.reachable(idx(&g, "entry"));
        assert!(!r.contains_key(&idx(&g, "Foo::new")), "Arc is foreign");
        assert!(
            r.contains_key(&idx(&g, "make")),
            "module-qualified free call"
        );
    }

    #[test]
    fn may_call_prunes_unlinkable_edges() {
        let parsed: Vec<ParsedFile> = [
            ("crates/serve/src/a.rs", "fn entry() { helper(1); }\n"),
            ("crates/lint/src/b.rs", "fn helper(x: u32) -> u32 { x }\n"),
        ]
        .iter()
        .map(|(p, s)| parse_file(&scan_source(p, s)))
        .collect();
        let g = CallGraph::build(&parsed, &|caller, _| !caller.contains("serve"));
        let r = g.reachable(idx(&g, "entry"));
        assert!(
            !r.contains_key(&idx(&g, "helper")),
            "serve cannot link lint"
        );
    }
}
