//! Token-level Rust source scanner.
//!
//! The rules in [`crate::rules`] match on *code* tokens only, so the
//! scanner's job is to produce, per source line, a copy of the line with
//! everything that is not code blanked out: comment bodies and string /
//! char literal contents are replaced by spaces (quotes kept as
//! placeholders), while `// lint: allow(rule)` annotations are lifted
//! out of the comments they live in and attached to the line they
//! govern. This keeps every rule a simple substring scan that cannot be
//! fooled by a banned token inside a doc-example, a test string, or a
//! commented-out line — and, symmetrically, cannot be silenced by
//! hiding real code in clever formatting, because the scanner follows
//! the same lexical grammar rustc does (line + nested block comments,
//! escaped strings, raw strings with `#` fences, byte strings, char
//! literals vs. lifetimes).
//!
//! String literal *contents* are not discarded entirely: each literal is
//! recorded with its text and the nearest code characters on either
//! side, which is what the `wall_clock` rule's serialized-field-name
//! cross-check consumes (a literal wedged between `(` and `,` is a JSON
//! field name in the engine's hand-built `report_json.rs` trees).

/// One string literal occurrence, with just enough surrounding context
/// to classify its syntactic role on the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// The literal's text (escapes left as written, fences stripped).
    pub content: String,
    /// Last non-whitespace code character before the opening quote on
    /// the same line, if any.
    pub prev: Option<char>,
    /// First non-whitespace code character after the closing quote on
    /// the same line, if any.
    pub next: Option<char>,
}

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comment bodies and literal contents blanked.
    pub code: String,
    /// String literals that *start* on this line.
    pub literals: Vec<StrLit>,
    /// Rules allowed on this line via `// lint: allow(rule)` — either a
    /// trailing comment on the line itself, or a standalone comment line
    /// directly above it (blank and comment-only lines in between are
    /// transparent).
    pub allows: Vec<String>,
}

impl Line {
    /// Whether this line carries an allow annotation for `rule`.
    pub fn allows(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule)
    }
}

/// A scanned source file: the unit every rule operates on.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (diagnostic label).
    pub path: String,
    /// Scanned lines, in order (index 0 is line 1).
    pub lines: Vec<Line>,
}

/// Extracts `lint: allow(a, b)` rule names from one comment's text.
fn parse_allows(comment: &str, out: &mut Vec<String>) {
    let mut rest = comment;
    while let Some(p) = rest.find("lint: allow(") {
        rest = &rest[p + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { break };
        for name in rest[..end].split(',') {
            let name = name.trim();
            if !name.is_empty() {
                out.push(name.to_string());
            }
        }
        rest = &rest[end..];
    }
}

/// Lexes `text` into blanked per-line code plus literals and allow
/// annotations. `path` is recorded verbatim as the diagnostic label.
pub fn scan_source(path: &str, text: &str) -> SourceFile {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    // Allows from standalone comment lines, waiting for the next line
    // that contains actual code.
    let mut pending_allows: Vec<String> = Vec::new();
    // Index into `cur.literals` of a literal still waiting for its
    // `next` code character.
    let mut await_next: Option<usize> = None;

    let mut i = 0usize;
    let n = chars.len();

    // Finishes the current line: standalone-comment/blank lines keep
    // pending allows queued; code lines consume them.
    fn flush_line(
        lines: &mut Vec<Line>,
        cur: &mut Line,
        pending: &mut Vec<String>,
        await_next: &mut Option<usize>,
    ) {
        let has_code = cur.code.chars().any(|c| !c.is_whitespace());
        if has_code {
            let mut owned = std::mem::take(pending);
            owned.append(&mut cur.allows);
            cur.allows = owned;
        }
        lines.push(std::mem::take(cur));
        *await_next = None;
    }

    // Appends a code character, filling a literal's `next` slot if one
    // is waiting.
    fn push_code(cur: &mut Line, await_next: &mut Option<usize>, c: char) {
        if !c.is_whitespace() {
            if let Some(k) = await_next.take() {
                cur.literals[k].next = Some(c);
            }
        }
        cur.code.push(c);
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                flush_line(&mut lines, &mut cur, &mut pending_allows, &mut await_next);
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment: capture text to EOL, lift annotations.
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                let had_code = cur.code.chars().any(|ch| !ch.is_whitespace());
                let mut found = Vec::new();
                parse_allows(&comment, &mut found);
                if had_code {
                    cur.allows.append(&mut found);
                } else {
                    pending_allows.append(&mut found);
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, possibly nested and multi-line. Bodies
                // are blanked; annotations only live in line comments.
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            flush_line(&mut lines, &mut cur, &mut pending_allows, &mut await_next);
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                i = consume_string(&chars, i, 0, &mut cur, &mut lines, &mut pending_allows, {
                    await_next = None;
                    &mut await_next
                });
            }
            'r' | 'b' if starts_string_prefix(&chars, i) => {
                // r"..." / r#"..."# / b"..." / br#"..."# — find the
                // quote and fence length, then consume as a string.
                let mut j = i;
                while j < n && (chars[j] == 'r' || chars[j] == 'b') {
                    push_code(&mut cur, &mut await_next, chars[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < n && chars[j] == '#' {
                    push_code(&mut cur, &mut await_next, chars[j]);
                    hashes += 1;
                    j += 1;
                }
                // starts_string_prefix guarantees a quote here.
                let raw = chars[i..j].contains(&'r');
                i = consume_string(
                    &chars,
                    j,
                    if raw { hashes } else { 0 },
                    &mut cur,
                    &mut lines,
                    &mut pending_allows,
                    {
                        await_next = None;
                        &mut await_next
                    },
                );
            }
            '\'' => {
                // Char literal vs. lifetime: a literal closes with a
                // quote after one (possibly escaped) character.
                if let Some(end) = char_literal_end(&chars, i) {
                    push_code(&mut cur, &mut await_next, '\'');
                    for _ in i + 1..end {
                        cur.code.push(' ');
                    }
                    cur.code.push('\'');
                    i = end + 1;
                } else {
                    push_code(&mut cur, &mut await_next, '\'');
                    i += 1;
                }
            }
            _ => {
                push_code(&mut cur, &mut await_next, c);
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.allows.is_empty() {
        flush_line(&mut lines, &mut cur, &mut pending_allows, &mut await_next);
    }

    SourceFile {
        path: path.to_string(),
        lines,
    }
}

/// Whether `chars[i..]` starts a string-literal prefix (`r`/`b`/`br`
/// runs, optional `#` fences, then `"`), as opposed to an identifier
/// that merely begins with those letters.
fn starts_string_prefix(chars: &[char], i: usize) -> bool {
    // An identifier character *before* the prefix means this `r`/`b` is
    // the tail of a name (e.g. `var`), not a literal prefix.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    let mut saw_r = false;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
        saw_r |= chars[j] == 'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    let hash_start = j;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    // `#` fences are only legal on raw strings.
    if j > hash_start && !saw_r {
        return false;
    }
    j < chars.len() && chars[j] == '"' && j > i
}

/// Consumes a string literal starting at the opening quote
/// `chars[open]`, with `hashes` raw-string fence characters (0 for a
/// normal escaped string). Returns the index just past the literal.
#[allow(clippy::too_many_arguments)]
fn consume_string(
    chars: &[char],
    open: usize,
    hashes: usize,
    cur: &mut Line,
    lines: &mut Vec<Line>,
    pending_allows: &mut Vec<String>,
    await_next: &mut Option<usize>,
) -> usize {
    let n = chars.len();
    let raw = hashes > 0 || (open > 0 && matches!(chars[open - 1], 'r' | '#'));
    let prev = cur
        .code
        .chars()
        .rev()
        .find(|ch| !ch.is_whitespace() && !matches!(ch, 'r' | 'b' | '#'));
    cur.code.push('"');
    let mut content = String::new();
    let mut i = open + 1;
    // Record the literal on the line where it starts.
    cur.literals.push(StrLit {
        content: String::new(),
        prev,
        next: None,
    });
    let (start_line, slot) = (lines.len(), cur.literals.len() - 1);
    while i < n {
        let c = chars[i];
        if c == '\\' && !raw && i + 1 < n && chars[i + 1] != '\n' {
            content.push(c);
            content.push(chars[i + 1]);
            cur.code.push(' ');
            cur.code.push(' ');
            i += 2;
            continue;
        }
        if c == '"' {
            // Check the raw-string fence.
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                cur.code.push('"');
                for _ in 0..hashes {
                    cur.code.push('#');
                }
                i += 1 + hashes;
                break;
            }
        }
        if c == '\n' {
            // Multi-line literal (or a `\`-continued one): close out
            // this line's code; the literal record stays on the line
            // where it started.
            let has_code = cur.code.chars().any(|ch| !ch.is_whitespace());
            if has_code {
                let mut owned = std::mem::take(pending_allows);
                owned.append(&mut cur.allows);
                cur.allows = owned;
            }
            lines.push(std::mem::take(cur));
        } else {
            content.push(c);
            cur.code.push(' ');
        }
        i += 1;
    }
    if start_line < lines.len() {
        // Multi-line: the starting line was already flushed into `lines`.
        lines[start_line].literals[slot].content = content;
    } else {
        cur.literals[slot].content = content;
        // Literal closed on its starting line: the next code char on
        // this line fills `next`.
        *await_next = Some(slot);
    }
    i
}

/// If `chars[i]` opens a char literal, returns the index of its closing
/// quote; `None` means it is a lifetime / label tick.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    if i + 1 >= n {
        return None;
    }
    if chars[i + 1] == '\\' {
        // Escaped char: scan (bounded) for the closing quote.
        let mut j = i + 2;
        let limit = (i + 12).min(n);
        while j < limit {
            if chars[j] == '\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        return Some(i + 2);
    }
    None
}

/// Counts the non-overlapping occurrences of `needle` in `code` that
/// sit on word boundaries (neither neighbor is `[A-Za-z0-9_]`).
pub fn count_word(code: &str, needle: &str) -> usize {
    let bytes = code.as_bytes();
    let nb = needle.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut count = 0;
    let mut from = 0;
    while let Some(p) = code[from..].find(needle) {
        let start = from + p;
        let end = start + nb.len();
        // A boundary is only required where the needle's own edge is a
        // word character (`.unwrap()` begins and ends with punctuation).
        let left_ok = !is_word(nb[0]) || start == 0 || !is_word(bytes[start - 1]);
        let right_ok = !is_word(nb[nb.len() - 1]) || end >= bytes.len() || !is_word(bytes[end]);
        if left_ok && right_ok {
            count += 1;
        }
        from = start + nb.len().max(1);
    }
    count
}

/// Whether `code` contains `needle` on word boundaries.
pub fn contains_word(code: &str, needle: &str) -> bool {
    count_word(code, needle) > 0
}

/// Counts the `[` characters that open an *index expression*: the
/// previous non-space character is an identifier character, `)`, or
/// `]` — i.e. a subscript on a place expression, which panics when out
/// of bounds. Attributes (`#[`), macros (`vec![`), array literals,
/// slice types (`&[u8]`), and patterns never match: their `[` follows
/// punctuation. Shared by the `ratchet` `indexing` counter and the
/// `hot_panic` contract rule.
pub fn index_brackets(code: &str) -> usize {
    let bytes = code.as_bytes();
    let mut count = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        let Some(&p) = bytes[..j].last() else {
            continue;
        };
        if !(p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']') {
            continue;
        }
        // An identifier before `[` is indexing *unless* it is a keyword
        // (`let [a, b] =`, `for [x, y] in`, `return [..]` are patterns
        // or array expressions, not element access).
        let start = bytes[..j]
            .iter()
            .rposition(|&c| !(c.is_ascii_alphanumeric() || c == b'_'))
            .map(|k| k + 1)
            .unwrap_or(0);
        let word = &code[start..j];
        if matches!(
            word,
            "let" | "in" | "mut" | "ref" | "if" | "else" | "match" | "return" | "break" | "for"
        ) {
            continue;
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        scan_source("t.rs", text)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let c = codes("let x = 1; // thread_rng\n/* SystemTime */ let y = 2;\n");
        assert_eq!(c[0], "let x = 1; ");
        assert_eq!(c[1], " let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let c = codes("/* outer /* inner */ still comment */ code()\n");
        assert_eq!(c[0], " code()");
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let c = codes("let s = \"thread_rng\"; foo();\n");
        assert!(!c[0].contains("thread_rng"));
        assert!(c[0].contains('"'));
        assert!(c[0].contains("foo()"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = codes("let s = r#\"Instant::now \"quoted\" \"#; bar();\n");
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("bar()"));
        let c = codes("let s = \"esc \\\" Instant::now\"; baz();\n");
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("baz()"));
    }

    #[test]
    fn multiline_string_spans_lines() {
        let c = codes("let s = \"line one\nInstant::now\nend\"; tail();\n");
        assert!(!c.join("\n").contains("Instant"));
        assert!(c[2].contains("tail()"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let c = codes("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }\n");
        assert!(c[0].contains("<'a>"));
        assert!(!c[0].contains("'x'"));
        // the blanked char literal keeps its quotes
        assert_eq!(c[0].matches('\'').count(), 6);
    }

    #[test]
    fn allow_on_same_line_and_preceding_line() {
        let f = scan_source(
            "t.rs",
            "let t = now(); // lint: allow(wall_clock)\n\
             // lint: allow(rng)\nlet r = thread_rng();\nlet s = 3;\n",
        );
        assert!(f.lines[0].allows("wall_clock"));
        assert!(!f.lines[0].allows("rng"));
        assert!(f.lines[2].allows("rng"));
        assert!(f.lines[3].allows.is_empty());
    }

    #[test]
    fn allow_list_and_blank_line_transparency() {
        let f = scan_source(
            "t.rs",
            "// lint: allow(rng, wall_clock)\n\n// another comment\nstuff();\n",
        );
        assert!(f.lines[3].allows("rng"));
        assert!(f.lines[3].allows("wall_clock"));
    }

    #[test]
    fn literal_context_captures_field_name_position() {
        let f = scan_source("t.rs", "obj(vec![(\"wall\", v.to_value())])\n");
        let lit = &f.lines[0].literals[0];
        assert_eq!(lit.content, "wall");
        assert_eq!(lit.prev, Some('('));
        assert_eq!(lit.next, Some(','));
    }

    #[test]
    fn index_bracket_detection() {
        assert_eq!(index_brackets("let x = v[i] + w[j + 1];"), 2);
        assert_eq!(index_brackets("f(a)[0] and m[k][l]"), 3);
        assert_eq!(index_brackets("#[derive(Debug)]"), 0);
        assert_eq!(index_brackets("let v = vec![1, 2];"), 0);
        assert_eq!(index_brackets("fn f(x: &[u8], y: [u32; 4]) {}"), 0);
        assert_eq!(index_brackets("let [a, b] = pair;"), 0);
        assert_eq!(index_brackets("Vec<[f64; 4]>"), 0);
    }

    #[test]
    fn word_boundary_counting() {
        assert_eq!(
            count_word("HashMap<K, V>, MyHashMap, HashMaps", "HashMap"),
            1
        );
        assert_eq!(count_word("x.unwrap().unwrap()", ".unwrap()"), 2);
        assert!(contains_word("use std::time::Instant;", "Instant"));
    }
}
