//! `ssor-lint` — the workspace invariant checker.
//!
//! Every guarantee this reproduction makes — competitive ratios from
//! "few random paths" verified by *bit-identical* reports at any
//! thread count, steal order, or shard count — rests on source-level
//! invariants the compiler cannot see: all RNG streams derive from
//! `ssor_graph::derive_seed`, parallel fan-out collects in input
//! order, float comparisons use a total order, wall-clock reads never
//! reach serialized bytes, no crate admits `unsafe`. Until this crate,
//! those invariants lived in reviewers' heads and after-the-fact
//! determinism tests; `ssor-lint` machine-checks them on every commit,
//! *before* the build/test matrix spends its minutes.
//!
//! The design is deliberately token-level, not AST-level: a
//! dependency-free scanner ([`scanner`]) blanks comments and literals
//! following the real lexical grammar, and the rules ([`rules`]) are
//! substring scans over the remaining code. That trades type-aware
//! precision (the `float_ord` rule cannot know an expression's type)
//! for a checker that builds in under a second, has no dependency
//! tree to audit, and whose diagnostics are byte-stable golden-test
//! material. The escape hatch is per-line and greppable:
//! `// lint: allow(rule)`.
//!
//! On top of the flat scan sits one structural layer: a lightweight
//! item parser ([`parser`]) recognizes `fn` items, `impl` blocks, and
//! call sites in the blanked token stream, an approximate name-based
//! call graph ([`callgraph`]) connects them (conservatively — an
//! ambiguous callee taints every candidate), and the contract rules
//! ([`rules::contract`]) enforce transitive panic-freedom and
//! allocation discipline for the hot entry points declared in the
//! committed `lint_contracts.json` ([`contracts`]).
//!
//! Two entry modes (see [`runner`]): `--check` compares the tree and
//! the committed ratchet baseline (`lint_budget.json`), `--bless`
//! re-records the baseline — counts may only shrink through bless,
//! which is what makes the ratchet a one-way street.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod callgraph;
pub mod contracts;
pub mod parser;
pub mod rules;
pub mod runner;
pub mod scanner;

pub use rules::{Diagnostic, FileClass};
pub use runner::{find_workspace_root, run, Mode, Outcome};
pub use scanner::{scan_source, SourceFile};
