//! Lightweight item parser: `fn` items, `impl`/`trait` blocks, and call
//! sites, recovered from the scanner's blanked lines.
//!
//! This is deliberately **not** an AST. The call-graph contract rules
//! (see [`crate::rules::contract`]) need three facts per file — which
//! functions exist, where their bodies are, and what they call — and all
//! three are recoverable from a single linear scan over blanked code,
//! because the scanner already removed every construct that could fool
//! brace matching (comments, string/char literal contents). What remains
//! is an approximation with known edges, documented in
//! `ARCHITECTURE.md`:
//!
//! - **Over-approximation.** Calls are resolved by *name* (plus receiver
//!   type for `Type::name` paths and arity when it is computable), so an
//!   ambiguous name taints every same-named candidate. A false edge can
//!   only make the checker stricter, never blinder.
//! - **Under-approximation.** Calls through std/vendored code, function
//!   pointers, trait objects, and macro expansions are invisible. Std is
//!   assumed panic-disciplined at the call token level instead: the
//!   token rules ban the *call sites* (`.unwrap()`, `[i]`, `.collect`)
//!   rather than chasing their callees.
//!
//! Bodies are attributed to the innermost enclosing `fn`, so closures
//! and nested items scan under their lexical parent — exactly the
//! conservative choice for reachability.

use crate::scanner::SourceFile;

/// One `fn` item recovered from a scanned file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Simple name (`answer_on`, `sample_with`).
    pub name: String,
    /// Enclosing `impl`/`trait` type's last path segment, if any.
    pub type_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based body line range (opening to closing brace), `None` for a
    /// bodiless declaration (trait method signature).
    pub body: Option<(usize, usize)>,
    /// Parameter count **excluding** any `self` receiver.
    pub params: usize,
    /// Whether the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`/`#[cfg(test)]`.
    pub is_test: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(...)` — a method on some receiver.
    Method,
    /// `qual::name(...)` — the last two path segments.
    Path(String),
    /// `name(...)` — a bare call.
    Free,
}

/// One call site inside some function's body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index into the file's `fns` of the lexically enclosing function.
    pub caller: usize,
    /// Callee's simple name.
    pub name: String,
    /// Resolution shape.
    pub kind: CallKind,
    /// Argument count, when it could be computed confidently (`None`
    /// when a closure literal or unbalanced bracketing makes the comma
    /// count unreliable — resolution then falls back to name-only).
    pub arity: Option<usize>,
}

/// Everything the call graph needs from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions defined in the file, in source order.
    pub fns: Vec<FnDef>,
    /// Call sites inside those functions' bodies.
    pub calls: Vec<CallSite>,
}

/// Scope-stack entries during the linear scan.
#[derive(Debug, Clone)]
enum Scope {
    /// An `impl`/`trait` block and its subject type name.
    Impl(Option<String>),
    /// A `mod` block; `true` inside `#[cfg(test)]`.
    Mod(bool),
    /// A function body (index into `ParsedFile::fns`).
    Fn(usize),
    /// Any other brace pair (blocks, match arms, struct literals).
    Other,
}

fn is_word(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

const KEYWORDS: [&str; 26] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "mut", "ref",
    "let", "fn", "impl", "pub", "use", "where", "unsafe", "dyn", "break", "continue", "await",
    "async", "true", "false",
];

/// Parses one scanned file into its functions and call sites.
pub fn parse_file(file: &SourceFile) -> ParsedFile {
    // Join the blanked lines; record each line's start offset so byte
    // positions map back to 1-based line numbers.
    let mut text = String::new();
    let mut line_starts = Vec::with_capacity(file.lines.len());
    for line in &file.lines {
        line_starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    let chars: Vec<char> = text.chars().collect();
    // char index -> byte offset is identity only for ASCII; track both.
    let mut byte_of = Vec::with_capacity(chars.len() + 1);
    let mut b = 0usize;
    for &c in &chars {
        byte_of.push(b);
        b += c.len_utf8();
    }
    byte_of.push(b);
    let line_of = |ci: usize| -> usize {
        let byte = byte_of[ci.min(byte_of.len() - 1)];
        match line_starts.binary_search(&byte) {
            Ok(l) => l + 1,
            Err(l) => l, // insertion point is 1 past the containing line
        }
    };

    let mut out = ParsedFile::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        if c == '#' && i + 1 < n && chars[i + 1] == '[' {
            // Attribute: consume to the matching `]`, note test markers.
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                match chars[j] {
                    '[' => depth += 1,
                    ']' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr: String = chars[start..j.saturating_sub(1)].iter().collect();
            let attr = attr.trim();
            if attr == "test" || attr.contains("cfg(test)") {
                pending_test = true;
            }
            i = j;
            continue;
        }
        if c == '{' {
            stack.push(Scope::Other);
            i += 1;
            continue;
        }
        if c == '}' {
            stack.pop();
            i += 1;
            continue;
        }
        if is_word(c) && (i == 0 || !is_word(chars[i - 1])) {
            let start = i;
            let mut j = i;
            while j < n && is_word(chars[j]) {
                j += 1;
            }
            let word: String = chars[start..j].iter().collect();
            match word.as_str() {
                "impl" | "trait" => {
                    pending_test = false;
                    i = parse_impl_header(&chars, j, &word, &mut stack);
                    continue;
                }
                "mod" => {
                    let in_test = pending_test || in_test_scope(&stack);
                    pending_test = false;
                    i = parse_mod_header(&chars, j, in_test, &mut stack);
                    continue;
                }
                "fn" => {
                    let is_test = pending_test || in_test_scope(&stack);
                    pending_test = false;
                    i = parse_fn(
                        file, &chars, start, j, is_test, &mut stack, &mut out, &line_of,
                    );
                    continue;
                }
                "struct" | "enum" | "union" | "const" | "static" | "type" | "use" => {
                    pending_test = false;
                }
                _ => {
                    maybe_record_call(&chars, start, j, &stack, &mut out);
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

fn in_test_scope(stack: &[Scope]) -> bool {
    stack.iter().any(|s| matches!(s, Scope::Mod(true)))
}

fn enclosing_fn(stack: &[Scope]) -> Option<usize> {
    stack.iter().rev().find_map(|s| match s {
        Scope::Fn(idx) => Some(*idx),
        _ => None,
    })
}

fn enclosing_type(stack: &[Scope]) -> Option<String> {
    stack.iter().rev().find_map(|s| match s {
        Scope::Impl(t) => t.clone(),
        _ => None,
    })
}

/// Consumes an `impl`/`trait` header up to its `{` (or `;` for a trait
/// alias), pushing the scope. Returns the index just past the delimiter.
fn parse_impl_header(chars: &[char], mut i: usize, kw: &str, stack: &mut Vec<Scope>) -> usize {
    let n = chars.len();
    let start = i;
    while i < n && chars[i] != '{' && chars[i] != ';' {
        i += 1;
    }
    let header: String = chars[start..i].iter().collect();
    let subject = impl_subject(&header, kw);
    if i < n && chars[i] == '{' {
        stack.push(Scope::Impl(subject));
        i + 1
    } else {
        (i + 1).min(n)
    }
}

/// Extracts the subject type's last path segment from an impl/trait
/// header body (text between the keyword and the opening brace).
fn impl_subject(header: &str, kw: &str) -> Option<String> {
    // Strip generic params directly after the keyword, then for `impl`
    // take the text after ` for ` when present (trait impls), cut any
    // `where` clause, and keep the last `::` segment minus generics.
    let mut rest = header.trim_start();
    if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (pos, ch) in rest.char_indices() {
            match ch {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = pos + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    if kw == "impl" {
        if let Some(pos) = find_word(rest, "for") {
            rest = &rest[pos + 3..];
        }
    }
    if let Some(pos) = find_word(rest, "where") {
        rest = &rest[..pos];
    }
    let rest = rest.trim();
    let head: &str = rest
        .split(|c: char| c == '<' || c.is_whitespace())
        .next()
        .unwrap_or("");
    let name = head
        .rsplit("::")
        .next()
        .unwrap_or("")
        .trim_matches(|c: char| !is_word(c));
    if name.is_empty() || !name.chars().next().is_some_and(|c| c.is_alphabetic()) {
        None
    } else {
        Some(name.to_string())
    }
}

/// Byte position of `needle` in `hay` on word boundaries.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let end = at + needle.len();
        let left = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        let right = end >= bytes.len() || !bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_';
        if left && right {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

/// Consumes a `mod` header (`mod name;` or `mod name {`), pushing the
/// scope for the block form.
fn parse_mod_header(chars: &[char], mut i: usize, is_test: bool, stack: &mut Vec<Scope>) -> usize {
    let n = chars.len();
    while i < n && chars[i] != '{' && chars[i] != ';' {
        i += 1;
    }
    if i < n && chars[i] == '{' {
        stack.push(Scope::Mod(is_test));
    }
    (i + 1).min(n)
}

/// Parses one `fn` item from the `fn` keyword: name, parameter shape,
/// and body extent. Pushes a [`Scope::Fn`] when the body opens here.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    file: &SourceFile,
    chars: &[char],
    kw_start: usize,
    mut i: usize,
    is_test: bool,
    stack: &mut Vec<Scope>,
    out: &mut ParsedFile,
    line_of: &dyn Fn(usize) -> usize,
) -> usize {
    let n = chars.len();
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    // `fn` as a function-pointer *type* has no name; skip it.
    if i >= n || !(chars[i].is_ascii_alphabetic() || chars[i] == '_') {
        return i;
    }
    let name_start = i;
    while i < n && is_word(chars[i]) {
        i += 1;
    }
    let name: String = chars[name_start..i].iter().collect();
    // Skip generics between the name and the parameter list.
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    if i < n && chars[i] == '<' {
        let mut depth = 0i32;
        while i < n {
            match chars[i] {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    if i >= n || chars[i] != '(' {
        return i;
    }
    // Parameter list: balanced parens; split on depth-1 commas outside
    // brackets for the count and the `self` receiver check.
    let params_start = i + 1;
    let (mut pd, mut bd, mut cd) = (1i32, 0i32, 0i32);
    let mut j = params_start;
    let mut commas = 0usize;
    while j < n && pd > 0 {
        match chars[j] {
            '(' => pd += 1,
            ')' => pd -= 1,
            '[' => bd += 1,
            ']' => bd -= 1,
            '{' => cd += 1,
            '}' => cd -= 1,
            ',' if pd == 1 && bd == 0 && cd == 0 => commas += 1,
            _ => {}
        }
        j += 1;
    }
    let params_text: String = chars[params_start..j.saturating_sub(1)].iter().collect();
    let trimmed = params_text.trim();
    let (has_self, params) = if trimmed.is_empty() {
        (false, 0)
    } else {
        let first = trimmed.split(',').next().unwrap_or("").trim();
        let receiver = {
            // Strip `&`, a lifetime token, and `mut` off the receiver
            // position: `&'a mut self` → `self`.
            let mut s = first.trim_start_matches('&').trim_start();
            if let Some(rest) = s.strip_prefix('\'') {
                s = rest.trim_start_matches(is_word).trim_start();
            }
            let s = s.strip_prefix("mut ").map(str::trim_start).unwrap_or(s);
            s == "self" || s.starts_with("self:") || s.starts_with("self ")
        };
        let total = commas + 1;
        if receiver {
            (true, total - 1)
        } else {
            (false, total)
        }
    };
    // After the parameter list: return type / where clause, then `{`
    // body or `;` declaration, at paren depth 0.
    let mut k = j;
    let mut depth = 0i32;
    while k < n {
        match chars[k] {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '{' if depth == 0 => break,
            ';' if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    let fn_idx = out.fns.len();
    let sig_line = line_of(kw_start);
    if k < n && chars[k] == '{' {
        out.fns.push(FnDef {
            path: file.path.clone(),
            name,
            type_name: enclosing_type(stack),
            sig_line,
            body: Some((line_of(k), line_of(k))), // end patched by scope pop
            params,
            has_self,
            is_test,
        });
        // Track the body ourselves so the end line can be recorded.
        let body_end = matching_brace(chars, k);
        if let Some(f) = out.fns.get_mut(fn_idx) {
            f.body = Some((line_of(k), line_of(body_end)));
        }
        stack.push(Scope::Fn(fn_idx));
        k + 1
    } else {
        out.fns.push(FnDef {
            path: file.path.clone(),
            name,
            type_name: enclosing_type(stack),
            sig_line,
            body: None,
            params,
            has_self,
            is_test,
        });
        (k + 1).min(n)
    }
}

/// Index of the `}` matching the `{` at `open` (last index on imbalance).
fn matching_brace(chars: &[char], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len().saturating_sub(1)
}

/// Records `word` (spanning `chars[start..end]`) as a call site when it
/// is followed by `(` (optionally through a turbofish) and we are inside
/// a function body. Macro invocations (`name!`) are skipped — their
/// tokens are handled by the per-line token rules instead.
fn maybe_record_call(
    chars: &[char],
    start: usize,
    end: usize,
    stack: &[Scope],
    out: &mut ParsedFile,
) {
    let Some(caller) = enclosing_fn(stack) else {
        return;
    };
    let word: String = chars[start..end].iter().collect();
    if KEYWORDS.contains(&word.as_str()) || word == "self" || word == "Self" {
        return;
    }
    let n = chars.len();
    let mut j = end;
    while j < n && chars[j].is_whitespace() {
        j += 1;
    }
    if j < n && chars[j] == '!' {
        return; // macro
    }
    // Turbofish: `name::<...>(`.
    if j + 1 < n && chars[j] == ':' && chars[j + 1] == ':' {
        let mut t = j + 2;
        while t < n && chars[t].is_whitespace() {
            t += 1;
        }
        if t < n && chars[t] == '<' {
            let mut depth = 0i32;
            while t < n {
                match chars[t] {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            t += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                t += 1;
            }
            j = t;
            while j < n && chars[j].is_whitespace() {
                j += 1;
            }
        } else {
            return; // `name::segment...` — the *next* segment is the call
        }
    }
    if j >= n || chars[j] != '(' {
        return;
    }
    // Classify by what precedes the name.
    let mut p = start;
    while p > 0 && chars[p - 1].is_whitespace() {
        p -= 1;
    }
    let kind = if p > 0 && chars[p - 1] == '.' {
        CallKind::Method
    } else if p > 1 && chars[p - 1] == ':' && chars[p - 2] == ':' {
        // Walk back over the qualifying segment.
        let mut q = p - 2;
        while q > 0 && chars[q - 1].is_whitespace() {
            q -= 1;
        }
        let qual_end = q;
        while q > 0 && is_word(chars[q - 1]) {
            q -= 1;
        }
        let qual: String = chars[q..qual_end].iter().collect();
        if qual.is_empty() {
            CallKind::Free
        } else {
            CallKind::Path(qual)
        }
    } else {
        CallKind::Free
    };
    out.calls.push(CallSite {
        caller,
        name: word,
        kind,
        arity: call_arity(chars, j),
    });
}

/// Argument count of the call whose `(` sits at `open`: depth-1 commas
/// outside nested brackets. `None` when a closure literal (`|`) makes
/// the comma count unreliable — the resolver then skips arity filtering.
fn call_arity(chars: &[char], open: usize) -> Option<usize> {
    let n = chars.len();
    let (mut pd, mut bd, mut cd) = (1i32, 0i32, 0i32);
    let mut j = open + 1;
    let mut commas = 0usize;
    let mut any = false;
    while j < n && pd > 0 {
        match chars[j] {
            '(' => pd += 1,
            ')' => pd -= 1,
            '[' => bd += 1,
            ']' => bd -= 1,
            '{' => cd += 1,
            '}' => cd -= 1,
            '|' => return None,
            ',' if pd == 1 && bd == 0 && cd == 0 => commas += 1,
            _ => {}
        }
        if pd > 0 && !chars[j].is_whitespace() {
            any = true;
        }
        j += 1;
    }
    if pd != 0 {
        return None;
    }
    if !any {
        Some(0)
    } else {
        Some(commas + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scan_source("crates/x/src/a.rs", src))
    }

    #[test]
    fn finds_free_fns_and_methods() {
        let p = parse(
            "fn top(a: u32, b: u32) -> u32 { a + b }\n\
             impl Foo {\n    pub fn method(&self, x: u32) -> u32 { helper(x) }\n\
             \n    fn assoc(n: usize) -> Foo { Foo { n } }\n}\n",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "top");
        assert_eq!((p.fns[0].params, p.fns[0].has_self), (2, false));
        assert_eq!(p.fns[1].name, "method");
        assert_eq!(p.fns[1].type_name.as_deref(), Some("Foo"));
        assert_eq!((p.fns[1].params, p.fns[1].has_self), (1, true));
        assert_eq!((p.fns[2].params, p.fns[2].has_self), (1, false));
        assert_eq!(p.calls.len(), 1);
        assert_eq!(p.calls[0].name, "helper");
        assert_eq!(p.calls[0].kind, CallKind::Free);
        assert_eq!(p.calls[0].arity, Some(1));
    }

    #[test]
    fn classifies_method_path_and_turbofish_calls() {
        let p = parse(
            "fn f(v: &[u32]) {\n\
                 v.iter().collect::<Vec<_>>();\n\
                 EpochCell::reader(&cell);\n\
                 std::thread::spawn(move || {});\n\
                 Self::assoc(1, 2);\n\
             }\n",
        );
        let names: Vec<(&str, &CallKind)> =
            p.calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert!(names.contains(&("iter", &CallKind::Method)));
        assert!(names.contains(&("collect", &CallKind::Method)));
        assert!(names.contains(&("reader", &CallKind::Path("EpochCell".into()))));
        assert!(names.contains(&("spawn", &CallKind::Path("thread".into()))));
        assert!(names.contains(&("assoc", &CallKind::Path("Self".into()))));
        // The closure argument makes spawn's arity unreliable.
        let spawn = p.calls.iter().find(|c| c.name == "spawn").unwrap();
        assert_eq!(spawn.arity, None);
        let assoc = p.calls.iter().find(|c| c.name == "assoc").unwrap();
        assert_eq!(assoc.arity, Some(2));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let p = parse("fn f() { panic!(\"x\"); if (a)(b) { vec![1] } }\n");
        assert!(p.calls.iter().all(|c| c.name != "panic" && c.name != "if"));
    }

    #[test]
    fn trait_impls_take_the_subject_type() {
        let p = parse(
            "impl<T: Clone> fmt::Display for Diagnostic<T> {\n\
                 fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write(f) }\n\
             }\n\
             trait Oracle {\n    fn answer(&self) -> u32;\n    fn both(&self) -> u32 { self.answer() }\n}\n",
        );
        assert_eq!(p.fns[0].type_name.as_deref(), Some("Diagnostic"));
        assert_eq!(p.fns[1].type_name.as_deref(), Some("Oracle"));
        assert!(p.fns[1].body.is_none(), "declaration has no body");
        assert!(p.fns[2].body.is_some(), "default method has a body");
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_fns() {
        let p = parse(
            "fn lib_fn() {}\n\
             #[test]\nfn attr_test() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n",
        );
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib_fn").is_test);
        assert!(by_name("attr_test").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
    }

    #[test]
    fn body_line_ranges_cover_the_braces() {
        let p = parse("fn a() {\n    one();\n}\n\nfn b() { two() }\n");
        assert_eq!(p.fns[0].body, Some((1, 3)));
        assert_eq!(p.fns[1].body, Some((5, 5)));
        assert_eq!(p.fns[0].sig_line, 1);
        assert_eq!(p.fns[1].sig_line, 5);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse("fn f(cb: fn(u32) -> u32) -> u32 { cb(1) }\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params, 1);
    }

    #[test]
    fn nested_closures_attribute_calls_to_the_enclosing_fn() {
        let p = parse("fn outer() { run(|| { inner(); }); }\n");
        assert!(p.calls.iter().any(|c| c.name == "inner" && c.caller == 0));
    }
}
