//! CLI for the workspace invariant checker.
//!
//! ```text
//! ssor-lint [--check | --bless] [--root DIR] [--budget FILE] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error
//! — so CI can gate on it directly (`cargo run -p ssor-lint -- --check`).

#![forbid(unsafe_code)]

use ssor_lint::runner::{find_workspace_root, run, Mode};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ssor-lint [--check | --bless] [--root DIR] [--budget FILE] [--quiet]\n\
         \n\
         --check   compare the tree against the rulebook and the committed\n\
         \u{20}         ratchet budget (default)\n\
         --bless   rewrite the ratchet budget to the measured counts\n\
         --root    workspace root (default: nearest ancestor with a\n\
         \u{20}         [workspace] Cargo.toml)\n\
         --budget  budget file (default: <root>/lint_budget.json)\n\
         --quiet   suppress notes and the summary line"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root: Option<PathBuf> = None;
    let mut budget: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--bless" => mode = Mode::Bless,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--budget" => match args.next() {
                Some(v) => budget = Some(PathBuf::from(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("ssor-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "ssor-lint: no [workspace] Cargo.toml above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let budget = budget.unwrap_or_else(|| root.join("lint_budget.json"));

    let outcome = match run(&root, &budget, mode) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ssor-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &outcome.diagnostics {
        println!("{d}");
    }
    if !quiet {
        for note in &outcome.notes {
            eprintln!("{note}");
        }
        let verb = match mode {
            Mode::Check => "checked",
            Mode::Bless => "blessed",
        };
        eprintln!(
            "ssor-lint: {} {} files across {} crates: {}",
            verb,
            outcome.files_scanned,
            outcome.counts.len(),
            if outcome.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", outcome.diagnostics.len())
            }
        );
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
