//! Workspace walk and check orchestration.
//!
//! Files are visited in sorted path order and diagnostics are sorted
//! `(path, line, rule)` before printing, so the checker's output is a
//! pure function of the tree's contents — the same byte-stability
//! standard the rest of the workspace holds its reports to.
//!
//! The run is two-pass. Pass one scans every `.rs` file, runs the
//! per-file token rules, and accumulates the ratchet counts. Pass two
//! parses the *library* files (`crates/*/src/**` and `src/**`, minus
//! `src/bin/**` — binaries cannot be callees of library code) into an
//! approximate call graph ([`crate::callgraph`]) — with edges pruned
//! to the Cargo dependency closure read from the manifests, so a name
//! collision cannot resolve across a crate boundary the linker would
//! reject — and enforces the hot-path contracts declared in
//! `lint_contracts.json` ([`crate::rules::contract`]). A missing
//! contract file is itself a violation: deleting it must not silently
//! disarm the gate.

use crate::budget;
use crate::callgraph::CallGraph;
use crate::contracts;
use crate::parser::{parse_file, ParsedFile};
use crate::rules::{self, contract, ratchet, Diagnostic, FileClass};
use crate::scanner::{scan_source, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored shims
/// (not first-party code), VCS metadata, and test fixtures (lint
/// fixtures *contain* violations on purpose).
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

/// What to do with the ratchet baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Compare measured counts against the committed budget.
    Check,
    /// Rewrite the budget to the measured counts (tightening or
    /// initializing the ratchet). Other rules still report.
    Bless,
}

/// The result of a full workspace run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Rule violations, sorted `(path, line, rule, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Non-fatal observations (under-budget ratchets, stale entries).
    pub notes: Vec<String>,
    /// Measured per-crate ratchet counts.
    pub counts: BTreeMap<String, ratchet::Counts>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Collects every workspace `.rs` file under `root`, sorted by
/// workspace-relative path.
fn collect_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(io::Error::other)?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Whether a workspace-relative path joins the call graph: library
/// code only — the contract rules reason about what the serving and
/// sweep binaries can *link*, and a `src/bin/**` helper sharing a name
/// with a library function would only manufacture false taint.
fn in_call_graph(rel: &str) -> bool {
    ratchet::crate_of(rel).is_some() && !rel.contains("src/bin/")
}

/// The workspace's first-party dependency closure, read from the
/// `Cargo.toml` manifests: crate name → every `ssor-*` crate it can
/// transitively link. `[dev-dependencies]` are excluded on purpose —
/// they only reach test code, and test functions are never call-graph
/// candidates anyway.
///
/// This is what makes name-based call resolution honest about crate
/// boundaries: `ssor-serve` reusing the method name `expect` must not
/// resolve into `ssor-lint`'s own parser, because no serving binary
/// links the lint tooling.
fn workspace_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            manifests.push(e.path().join("Cargo.toml"));
        }
    }
    for manifest in manifests {
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        let mut section = String::new();
        let mut name = None;
        let mut deps = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                section = line.to_string();
                continue;
            }
            if section == "[package]" && name.is_none() {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start().strip_prefix('=').unwrap_or(rest);
                    name = Some(rest.trim().trim_matches('"').to_string());
                }
            }
            if section == "[dependencies]" && line.contains('=') {
                let key: String = line
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if key.starts_with("ssor") {
                    deps.insert(key);
                }
            }
        }
        if let Some(name) = name {
            direct.insert(name, deps);
        }
    }
    // Transitive closure by fixpoint (the dep graph is tiny).
    loop {
        let mut grew = false;
        let snapshot = direct.clone();
        for deps in direct.values_mut() {
            let indirect: BTreeSet<String> = deps
                .iter()
                .filter_map(|d| snapshot.get(d))
                .flatten()
                .cloned()
                .collect();
            for d in indirect {
                grew |= deps.insert(d);
            }
        }
        if !grew {
            return direct;
        }
    }
}

/// Runs the full rulebook over the workspace at `root` against the
/// budget at `budget_path`. In [`Mode::Bless`] the budget file is
/// rewritten to the measured counts instead of being compared.
pub fn run(root: &Path, budget_path: &Path, mode: Mode) -> io::Result<Outcome> {
    let mut outcome = Outcome::default();
    let budget_label = budget_path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("lint_budget.json")
        .to_string();

    let mut graph_files: BTreeMap<String, SourceFile> = BTreeMap::new();
    for (rel, path) in collect_sources(root)? {
        let text = fs::read_to_string(&path)?;
        let file = scan_source(&rel, &text);
        let class = FileClass::of(&rel);
        rules::check_file(&file, &class, &mut outcome.diagnostics);
        if let Some(krate) = ratchet::crate_of(&rel) {
            outcome
                .counts
                .entry(krate)
                .or_default()
                .add(ratchet::count_file(&file));
        }
        if in_call_graph(&rel) {
            graph_files.insert(rel, file);
        }
        outcome.files_scanned += 1;
    }

    // Pass two: call graph + hot-path contracts. BTreeMap iteration
    // keeps the parse list in sorted path order, so fn indices — and
    // therefore diagnostics — are deterministic.
    let parsed: Vec<ParsedFile> = graph_files.values().map(parse_file).collect();
    let deps = workspace_deps(root);
    let may_call = |caller: &str, callee: &str| {
        let (Some(a), Some(b)) = (ratchet::crate_of(caller), ratchet::crate_of(callee)) else {
            return true;
        };
        if a == b {
            return true;
        }
        // A missing manifest keeps the edge: over-approximate, never
        // silently blind the contract.
        deps.get(&a).is_none_or(|d| d.contains(&b))
    };
    let graph = CallGraph::build(&parsed, &may_call);
    match fs::read_to_string(root.join(contracts::FILE_NAME)) {
        Ok(text) => {
            let declared = contracts::from_json(&text)?;
            contract::check(
                contracts::FILE_NAME,
                &declared,
                &graph,
                &graph_files,
                &mut outcome.diagnostics,
            );
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            outcome.diagnostics.push(Diagnostic {
                path: contracts::FILE_NAME.to_string(),
                line: 1,
                rule: contract::HOT_PANIC,
                message: "hot-path contract file not found at the workspace root — \
                          restore it; deleting it must not disarm the contract gate"
                    .to_string(),
            });
        }
        Err(e) => return Err(e),
    }

    match mode {
        Mode::Bless => {
            fs::write(budget_path, budget::to_json(&outcome.counts))?;
        }
        Mode::Check => match fs::read_to_string(budget_path) {
            Ok(text) => {
                let committed = budget::from_json(&text)?;
                ratchet::check_counts(
                    &budget_label,
                    &outcome.counts,
                    &committed,
                    &mut outcome.diagnostics,
                    &mut outcome.notes,
                );
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                outcome.diagnostics.push(Diagnostic {
                    path: budget_label,
                    line: 1,
                    rule: ratchet::NAME,
                    message: "ratchet budget file not found; run `ssor-lint --bless` to \
                              record the baseline"
                        .to_string(),
                });
            }
            Err(e) => return Err(e),
        },
    }

    outcome.diagnostics.sort();
    Ok(outcome)
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the scan root. Shared by the CLI and
/// the in-process callers (self-check tests, the bench harness).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_covers_fixture_and_vendor_trees() {
        for dir in ["vendor", "target", "fixtures"] {
            assert!(SKIP_DIRS.contains(&dir));
        }
    }

    #[test]
    fn dependency_closure_separates_tooling_from_the_serving_plane() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let deps = workspace_deps(&root);
        let serve = deps.get("ssor-serve").expect("serve manifest parsed");
        assert!(serve.contains("ssor-graph"), "direct dep");
        assert!(serve.contains("ssor-core"), "transitive via ssor-engine");
        assert!(!serve.contains("ssor-lint"), "tooling is unlinkable");
        assert!(!serve.contains("ssor-bench"), "tooling is unlinkable");
        assert!(
            !deps.get("ssor-graph").unwrap().contains("ssor-core"),
            "dependencies are directional"
        );
    }

    #[test]
    fn call_graph_membership_is_library_only() {
        assert!(in_call_graph("crates/serve/src/query.rs"));
        assert!(in_call_graph("src/lib.rs"));
        assert!(!in_call_graph("crates/bench/src/bin/bench_trajectory.rs"));
        assert!(!in_call_graph("crates/serve/tests/t.rs"));
        assert!(!in_call_graph("examples/quickstart.rs"));
    }
}
