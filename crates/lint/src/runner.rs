//! Workspace walk and check orchestration.
//!
//! Files are visited in sorted path order and diagnostics are sorted
//! `(path, line, rule)` before printing, so the checker's output is a
//! pure function of the tree's contents — the same byte-stability
//! standard the rest of the workspace holds its reports to.

use crate::budget;
use crate::rules::{self, ratchet, Diagnostic, FileClass};
use crate::scanner::scan_source;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored shims
/// (not first-party code), VCS metadata, and test fixtures (lint
/// fixtures *contain* violations on purpose).
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

/// What to do with the ratchet baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Compare measured counts against the committed budget.
    Check,
    /// Rewrite the budget to the measured counts (tightening or
    /// initializing the ratchet). Other rules still report.
    Bless,
}

/// The result of a full workspace run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Rule violations, sorted `(path, line, rule, message)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Non-fatal observations (under-budget ratchets, stale entries).
    pub notes: Vec<String>,
    /// Measured per-crate ratchet counts.
    pub counts: BTreeMap<String, ratchet::Counts>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Collects every workspace `.rs` file under `root`, sorted by
/// workspace-relative path.
fn collect_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(io::Error::other)?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full rulebook over the workspace at `root` against the
/// budget at `budget_path`. In [`Mode::Bless`] the budget file is
/// rewritten to the measured counts instead of being compared.
pub fn run(root: &Path, budget_path: &Path, mode: Mode) -> io::Result<Outcome> {
    let mut outcome = Outcome::default();
    let budget_label = budget_path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("lint_budget.json")
        .to_string();

    for (rel, path) in collect_sources(root)? {
        let text = fs::read_to_string(&path)?;
        let file = scan_source(&rel, &text);
        let class = FileClass::of(&rel);
        rules::check_file(&file, &class, &mut outcome.diagnostics);
        if let Some(krate) = ratchet::crate_of(&rel) {
            outcome
                .counts
                .entry(krate)
                .or_default()
                .add(ratchet::count_file(&file));
        }
        outcome.files_scanned += 1;
    }

    match mode {
        Mode::Bless => {
            fs::write(budget_path, budget::to_json(&outcome.counts))?;
        }
        Mode::Check => match fs::read_to_string(budget_path) {
            Ok(text) => {
                let committed = budget::from_json(&text)?;
                ratchet::check_counts(
                    &budget_label,
                    &outcome.counts,
                    &committed,
                    &mut outcome.diagnostics,
                    &mut outcome.notes,
                );
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                outcome.diagnostics.push(Diagnostic {
                    path: budget_label,
                    line: 1,
                    rule: ratchet::NAME,
                    message: "ratchet budget file not found; run `ssor-lint --bless` to \
                              record the baseline"
                        .to_string(),
                });
            }
            Err(e) => return Err(e),
        },
    }

    outcome.diagnostics.sort();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_covers_fixture_and_vendor_trees() {
        for dir in ["vendor", "target", "fixtures"] {
            assert!(SKIP_DIRS.contains(&dir));
        }
    }
}
