//! The committed hot-path contract file: `lint_contracts.json`.
//!
//! Each entry declares one **entry point** of a latency-critical plane
//! and the contract rule families its transitive closure must satisfy:
//!
//! ```json
//! {
//!   "answer_on": {
//!     "crate": "ssor-serve",
//!     "rules": ["hot_panic", "hot_alloc"],
//!     "why": "per-request reply materialization"
//!   }
//! }
//! ```
//!
//! Keys are function names — either a simple name (`answer_on`,
//! matching any function so named in the crate) or `Type::name`
//! (matching methods/assoc fns of `Type`). The `crate` field pins the
//! entry to one budget-style crate key (`ssor-serve`), so a same-named
//! test helper elsewhere can never satisfy the lookup; an entry that
//! matches *no* function is itself a diagnostic, which is what keeps a
//! rename from silently disabling the gate. `rules` lists contract
//! families from [`crate::rules::contract`]; `why` is documentation
//! echoed in diagnostics.

use crate::budget::{bad, Parser};
use std::collections::BTreeMap;
use std::io;

/// The canonical file name at the workspace root.
pub const FILE_NAME: &str = "lint_contracts.json";

/// One declared entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Budget-style crate key (`ssor-serve`) the function must live in.
    pub krate: String,
    /// Contract rule families to enforce over the transitive closure.
    pub rules: Vec<String>,
    /// Why this function is hot (echoed in diagnostics).
    pub why: String,
}

/// Parses `lint_contracts.json`. Rejects unknown fields, unknown rule
/// names, duplicate keys, and empty rule lists — a malformed contract
/// file must fail the run loudly, never weaken it silently.
pub fn from_json(text: &str) -> io::Result<BTreeMap<String, Entry>> {
    let mut p = Parser::new(text, FILE_NAME);
    let mut entries = BTreeMap::new();
    p.object(
        &mut entries,
        |p, entries: &mut BTreeMap<String, Entry>, name| {
            let mut e = Entry {
                krate: String::new(),
                rules: Vec::new(),
                why: String::new(),
            };
            let mut seen = [false; 3];
            p.object(&mut e, |p, e: &mut Entry, key| match key.as_str() {
                "crate" if !seen[0] => {
                    seen[0] = true;
                    e.krate = p.string()?;
                    Ok(())
                }
                "rules" if !seen[1] => {
                    seen[1] = true;
                    p.array(|p| {
                        let rule = p.string()?;
                        if !crate::rules::contract::RULES.contains(&rule.as_str()) {
                            return Err(bad(
                                FILE_NAME,
                                &format!(
                                    "unknown contract rule `{rule}` (expected one of {:?})",
                                    crate::rules::contract::RULES
                                ),
                            ));
                        }
                        if e.rules.contains(&rule) {
                            return Err(bad(FILE_NAME, &format!("duplicate rule `{rule}`")));
                        }
                        e.rules.push(rule);
                        Ok(())
                    })
                }
                "why" if !seen[2] => {
                    seen[2] = true;
                    e.why = p.string()?;
                    Ok(())
                }
                other => Err(bad(
                    FILE_NAME,
                    &format!("unknown or duplicate field `{other}` in entry `{name}`"),
                )),
            })?;
            if !seen[0] || e.krate.is_empty() {
                return Err(bad(FILE_NAME, &format!("entry `{name}` needs a `crate`")));
            }
            if e.rules.is_empty() {
                return Err(bad(
                    FILE_NAME,
                    &format!("entry `{name}` declares no rules — delete it or list one"),
                ));
            }
            if entries.insert(name.clone(), e).is_some() {
                return Err(bad(FILE_NAME, &format!("duplicate entry `{name}`")));
            }
            Ok(())
        },
    )?;
    p.finish()?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"{
  "answer_on": { "crate": "ssor-serve", "rules": ["hot_panic", "hot_alloc"], "why": "per-request" },
  "claim_and_eval": { "crate": "ssor-engine", "rules": ["hot_panic"], "why": "sweep inner loop" }
}"#;

    #[test]
    fn parses_the_documented_shape() {
        let e = from_json(OK).unwrap();
        assert_eq!(e.len(), 2);
        let a = &e["answer_on"];
        assert_eq!(a.krate, "ssor-serve");
        assert_eq!(a.rules, vec!["hot_panic", "hot_alloc"]);
        assert_eq!(e["claim_and_eval"].rules, vec!["hot_panic"]);
    }

    #[test]
    fn rejects_unknown_rules_fields_and_duplicates() {
        assert!(from_json(r#"{ "f": { "crate": "c", "rules": ["nope"], "why": "" } }"#).is_err());
        assert!(from_json(r#"{ "f": { "crate": "c", "rules": [], "why": "" } }"#).is_err());
        assert!(from_json(r#"{ "f": { "rules": ["hot_panic"], "why": "" } }"#).is_err());
        assert!(
            from_json(r#"{ "f": { "crate": "c", "rules": ["hot_panic"], "extra": "x" } }"#)
                .is_err()
        );
        assert!(from_json(
            r#"{ "f": { "crate": "c", "rules": ["hot_panic", "hot_panic"], "why": "" } }"#
        )
        .is_err());
        assert!(from_json("{}").is_ok());
    }
}
