//! The background rebuilder: next-generation construction under churn.
//!
//! A [`Rebuilder`] owns one OS thread that repeatedly builds the next
//! [`RouteTable`] generation (through whatever source closure it was
//! given — typically [`churned_source`], which drives the engine's
//! [`Pipeline`] + [`PathSystemCache`] through a [`ChurnModel`]) and
//! publishes it into the shared [`EpochCell`]. Publication is the
//! epoch-swap from [`crate::epoch`]: readers keep answering on the old
//! snapshot mid-build and pick up the new generation on their next epoch
//! check — no stall, no torn state.
//!
//! Each generation's table is a deterministic function of `(base
//! configuration, generation)`, so any served reply can be verified
//! offline by rebuilding its generation and replaying the request.

use crate::epoch::EpochCell;
use ssor_engine::{PathSystemCache, Pipeline, TopologySpec};
use ssor_graph::{derive_seed, RouteTable};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What churns between generations.
#[derive(Debug, Clone)]
pub enum ChurnModel {
    /// Demand/template drift: generation `g` rebuilds the base pipeline
    /// under seed `derive_seed(master_seed, g)` — same topology, fresh
    /// template randomness (an FRT re-draw, a Räcke re-run).
    TemplateSeedDrift {
        /// Master seed the per-generation seeds derive from.
        master_seed: u64,
    },
    /// Topology churn: generation `g` runs on `topologies[g % len]` —
    /// link roll-outs, maintenance rotations.
    TopologyCycle {
        /// The rotation, applied round-robin by generation.
        topologies: Vec<TopologySpec>,
    },
}

/// A generation source driving `base` through `churn`: calling it with
/// generation `g` prepares the churned pipeline through `cache` and
/// flattens the result into a `RouteTable` stamped `g`. Advances the
/// cache generation first, so a capacity-bounded cache evicts
/// oldest-generation entries as churn proceeds (the serving loop's memory
/// stays bounded).
///
/// The returned closure is deterministic per generation — the replay
/// anchor for every reply the plane serves.
///
/// # Panics
///
/// The closure panics if `base` uses an objective without a template
/// (nothing to flatten), or if a `TopologyCycle` rotation is empty.
///
/// # Examples
///
/// ```
/// use ssor_engine::{PathSystemCache, Pipeline, TemplateSpec, TopologySpec};
/// use ssor_serve::{churned_source, ChurnModel};
/// use std::sync::Arc;
///
/// let cache = Arc::new(PathSystemCache::bounded(4));
/// let base = Pipeline::on(TopologySpec::Ring { n: 8 })
///     .template(TemplateSpec::FrtEnsemble { trees: 2 })
///     .alpha(2);
/// let mut source = churned_source(cache, base, ChurnModel::TemplateSeedDrift { master_seed: 7 });
/// let g1 = source(1);
/// assert_eq!(g1.generation(), 1);
/// assert_eq!(source(1).cdf(0, 4), g1.cdf(0, 4), "deterministic per generation");
/// ```
pub fn churned_source(
    cache: Arc<PathSystemCache>,
    base: Pipeline,
    churn: ChurnModel,
) -> impl FnMut(u64) -> RouteTable + Send + 'static {
    if let ChurnModel::TopologyCycle { topologies } = &churn {
        assert!(
            !topologies.is_empty(),
            "topology rotation must be non-empty"
        );
    }
    move |generation| {
        cache.advance_generation();
        let pipeline = match &churn {
            ChurnModel::TemplateSeedDrift { master_seed } => {
                base.clone().seed(derive_seed(*master_seed, generation))
            }
            ChurnModel::TopologyCycle { topologies } => base
                .clone()
                .with_topology(topologies[generation as usize % topologies.len()].clone()),
        };
        pipeline
            .prepare(&cache)
            .route_table(generation)
            .expect("churned pipeline must build a template")
    }
}

/// A background thread building and publishing successive generations.
#[derive(Debug)]
pub struct Rebuilder {
    handle: JoinHandle<()>,
    stop: Arc<AtomicBool>,
    built: Arc<AtomicU64>,
}

impl Rebuilder {
    /// Spawns the rebuild loop: starting after the cell's current
    /// generation, build generation `g` with `source(g)` and publish it,
    /// until [`Rebuilder::stop`] is called or `max_generations` tables
    /// have been published (`None` = only `stop` ends it).
    ///
    /// Readers are never stalled: construction happens entirely off the
    /// query path, and the publish itself is the epoch swap.
    pub fn spawn(
        cell: Arc<EpochCell<RouteTable>>,
        mut source: impl FnMut(u64) -> RouteTable + Send + 'static,
        max_generations: Option<u64>,
    ) -> Rebuilder {
        let stop = Arc::new(AtomicBool::new(false));
        let built = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let built = Arc::clone(&built);
            std::thread::spawn(move || {
                let mut generation = cell.load().generation();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(max) = max_generations {
                        if built.load(Ordering::Relaxed) >= max {
                            break;
                        }
                    }
                    generation += 1;
                    let table = source(generation);
                    assert_eq!(table.generation(), generation, "source must stamp g");
                    cell.publish(Arc::new(table));
                    built.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        Rebuilder {
            handle,
            stop,
            built,
        }
    }

    /// Generations published so far.
    pub fn generations_built(&self) -> u64 {
        self.built.load(Ordering::Relaxed)
    }

    /// Signals the loop to end and joins it, returning how many
    /// generations it published.
    pub fn stop(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("rebuilder panicked");
        self.built.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{answer_batch_on, Request};
    use crate::QueryPlane;
    use ssor_engine::TemplateSpec;

    fn base() -> Pipeline {
        Pipeline::on(TopologySpec::Ring { n: 8 })
            .template(TemplateSpec::FrtEnsemble { trees: 2 })
            .alpha(2)
    }

    #[test]
    fn rebuilder_publishes_up_to_max_generations() {
        let cache = Arc::new(PathSystemCache::new());
        let mut source = churned_source(
            Arc::clone(&cache),
            base(),
            ChurnModel::TemplateSeedDrift { master_seed: 1 },
        );
        let cell = Arc::new(EpochCell::new(Arc::new(source(0))));
        let rb = Rebuilder::spawn(Arc::clone(&cell), source, Some(3));
        while rb.generations_built() < 3 {
            std::thread::yield_now();
        }
        assert_eq!(rb.stop(), 3);
        assert_eq!(cell.load().generation(), 3);
        assert_eq!(cell.epoch(), 3);
        assert!(cache.generation() >= 4, "each build advanced the cache");
    }

    #[test]
    fn topology_cycle_rotates_and_stays_replayable() {
        let cache = Arc::new(PathSystemCache::bounded(4));
        let churn = ChurnModel::TopologyCycle {
            topologies: vec![TopologySpec::Ring { n: 6 }, TopologySpec::Ring { n: 9 }],
        };
        let mut source = churned_source(Arc::clone(&cache), base(), churn.clone());
        let g1 = source(1);
        let g2 = source(2);
        assert_eq!(g1.n(), 9, "generation 1 runs on topologies[1]");
        assert_eq!(g2.n(), 6);
        // Replay from an independent source instance: bit-identical.
        let mut replay = churned_source(Arc::new(PathSystemCache::new()), base(), churn);
        let r1 = replay(1);
        assert_eq!(g1.path_ids(0, 5), r1.path_ids(0, 5));
        assert_eq!(g1.cdf(0, 5), r1.cdf(0, 5));
    }

    #[test]
    fn queries_replay_across_live_swaps() {
        let cache = Arc::new(PathSystemCache::bounded(8));
        let churn = ChurnModel::TemplateSeedDrift { master_seed: 9 };
        let mut source = churned_source(Arc::clone(&cache), base(), churn.clone());
        let cell = Arc::new(EpochCell::new(Arc::new(source(0))));
        let plane = QueryPlane::new(Arc::clone(&cell), 3, 2);
        let rb = Rebuilder::spawn(Arc::clone(&cell), source, Some(5));
        let reqs: Vec<Request> = (0..40)
            .map(|i| Request {
                id: i,
                s: (i % 8) as u32,
                t: ((i + 1) % 8) as u32,
            })
            .collect();
        let mut batches = Vec::new();
        for _ in 0..10 {
            batches.push(plane.answer_batch(&reqs));
        }
        rb.stop();
        // Every batch replays bit-exactly from its recorded generation,
        // no matter where the swaps landed: the source closure is pure
        // per generation, so an independent instance regenerates the
        // exact snapshot that answered.
        let mut replay = churned_source(Arc::new(PathSystemCache::new()), base(), churn);
        for batch in &batches {
            let g = batch.replies[0].generation;
            assert!(
                batch.replies.iter().all(|r| r.generation == g),
                "one snapshot per batch"
            );
            let reference = replay(g);
            assert_eq!(batch, &answer_batch_on(&reference, 3, 1, &reqs));
        }
    }
}
