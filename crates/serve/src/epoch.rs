//! Epoch-swapped publication of immutable snapshots.
//!
//! The serving plane shares one [`EpochCell`] between a single publisher
//! (the rebuilder) and any number of readers (query shards). The cell
//! holds an `Arc<T>` plus a monotone epoch counter; publishing stores the
//! next snapshot and bumps the epoch. Readers hold an [`EpochReader`]
//! whose steady-state read is **one atomic load** — the cached `Arc` is
//! returned untouched while the epoch is unchanged, so queries never
//! contend with each other and an in-flight swap never stalls them. Only
//! on an epoch change does a reader take the slot mutex once, to clone
//! the new `Arc`.
//!
//! The crates here forbid `unsafe`, so this is the strongest publication
//! primitive available without one: wait-free steady-state reads, and a
//! single brief mutex acquisition per reader per swap (amortized to
//! nothing under any realistic swap cadence).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A swappable slot publishing `Arc<T>` snapshots under a monotone epoch.
///
/// # Examples
///
/// ```
/// use ssor_serve::EpochCell;
/// use std::sync::Arc;
///
/// let cell = Arc::new(EpochCell::new(Arc::new("gen0")));
/// let mut reader = EpochCell::reader(&cell);
/// assert_eq!(*reader.current().clone(), "gen0");
/// cell.publish(Arc::new("gen1"));
/// assert_eq!(*reader.current().clone(), "gen1");
/// assert_eq!(reader.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    /// The published snapshot and the epoch it was published at, updated
    /// together under the lock so readers always pair them exactly.
    slot: Mutex<(Arc<T>, u64)>,
    /// Fast-path signal mirroring the slot's epoch: readers spin on this
    /// with one `Acquire` load and only lock when it moves.
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell initially publishing `initial` at epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            slot: Mutex::new((initial, 0)),
            epoch: AtomicU64::new(0),
        }
    }

    /// Locks the slot, recovering from poisoning. The slot's invariant
    /// (snapshot paired with its publish epoch) is written in a single
    /// assignment under the lock, so a panicked holder cannot leave it
    /// half-updated — the "poisoned" state is still coherent, and the
    /// serving plane must keep answering rather than cascade one
    /// publisher panic into every future query.
    fn lock_slot(&self) -> std::sync::MutexGuard<'_, (Arc<T>, u64)> {
        match self.slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Publishes `next` as the current snapshot, returning the new epoch.
    /// Readers observe the bump via [`EpochReader::current`]; in-flight
    /// reads keep their previous `Arc` (snapshots are immutable, old
    /// generations stay valid until the last reader drops them).
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let mut slot = self.lock_slot();
        let e = slot.1 + 1;
        *slot = (next, e);
        // Release-store while still holding the lock: a reader that sees
        // the new epoch is guaranteed to find (at least) this snapshot in
        // the slot.
        self.epoch.store(e, Ordering::Release);
        e
    }

    /// The current epoch (0 until the first [`EpochCell::publish`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current snapshot (takes the slot lock; query paths
    /// should go through an [`EpochReader`] instead).
    pub fn load(&self) -> Arc<T> {
        self.lock_slot().0.clone()
    }

    /// A reader bound to this cell, pre-warmed with the current snapshot.
    pub fn reader(cell: &Arc<Self>) -> EpochReader<T> {
        let (cached, seen) = {
            let slot = cell.lock_slot();
            (slot.0.clone(), slot.1)
        };
        EpochReader {
            cell: Arc::clone(cell),
            cached,
            seen,
        }
    }
}

/// A per-thread read handle over an [`EpochCell`]: caches the last seen
/// snapshot and refreshes it only when the epoch moves.
#[derive(Debug)]
pub struct EpochReader<T> {
    cell: Arc<EpochCell<T>>,
    cached: Arc<T>,
    seen: u64,
}

impl<T> EpochReader<T> {
    /// The current snapshot. Steady state (no swap since the last call)
    /// is one atomic load and no locking; after a swap, one mutex
    /// acquisition refreshes the cache.
    pub fn current(&mut self) -> &Arc<T> {
        if self.cell.epoch.load(Ordering::Acquire) != self.seen {
            let slot = self.cell.lock_slot();
            self.cached = slot.0.clone();
            self.seen = slot.1;
        }
        &self.cached
    }

    /// The epoch of the snapshot [`EpochReader::current`] last returned.
    pub fn epoch(&self) -> u64 {
        self.seen
    }
}

impl<T> Clone for EpochReader<T> {
    fn clone(&self) -> Self {
        EpochReader {
            cell: Arc::clone(&self.cell),
            cached: Arc::clone(&self.cached),
            seen: self.seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn publish_bumps_epoch_and_readers_follow() {
        let cell = Arc::new(EpochCell::new(Arc::new(10u64)));
        let mut r = EpochCell::reader(&cell);
        assert_eq!(**r.current(), 10);
        assert_eq!(cell.publish(Arc::new(11)), 1);
        assert_eq!(cell.publish(Arc::new(12)), 2);
        assert_eq!(**r.current(), 12, "reader skips straight to newest");
        assert_eq!(r.epoch(), 2);
    }

    #[test]
    fn old_snapshots_stay_valid_for_holding_readers() {
        let cell = Arc::new(EpochCell::new(Arc::new(vec![1, 2, 3])));
        let mut r = EpochCell::reader(&cell);
        let held = Arc::clone(r.current());
        cell.publish(Arc::new(vec![9]));
        assert_eq!(*held, vec![1, 2, 3], "swap never invalidates held Arcs");
        assert_eq!(**r.current(), vec![9]);
    }

    #[test]
    fn concurrent_readers_see_monotone_epochs() {
        let cell = Arc::new(EpochCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut r = EpochCell::reader(&cell);
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = **r.current();
                        // Snapshot payload equals its publish epoch here,
                        // so the payload stream must be monotone too.
                        assert!(v >= last, "regressed from {last} to {v}");
                        assert_eq!(v, r.epoch(), "payload pairs with epoch");
                        last = v;
                    }
                });
            }
            for e in 1..=200u64 {
                assert_eq!(cell.publish(Arc::new(e)), e);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 200);
    }
}
