//! # ssor-serve
//!
//! Routing-as-a-service for the `ssor` workspace (reproduction of
//! *Sparse Semi-Oblivious Routing: Few Random Paths Suffice*, PODC
//! 2023): a sharded query plane over epoch-swapped
//! [`RouteTable`](ssor_graph::RouteTable) snapshots.
//!
//! The paper's headline — `α = O(log n)` random paths per pair suffice
//! for near-optimal congestion — means the *serving* side of
//! semi-oblivious routing is tiny: per pair, a handful of interned paths
//! and a sampling CDF. This crate turns the engine's batch pipeline into
//! something that answers queries:
//!
//! * [`EpochCell`] / [`EpochReader`] — atomic snapshot publication with
//!   wait-free steady-state reads (one `Acquire` load per query batch; a
//!   reader locks once per *swap*, not per read);
//! * [`QueryPlane`] / [`answer_on`] / [`answer_batch_on`] — the sharded
//!   front-end: `α` paths per request, fanned round-robin over OS
//!   threads and merged in request order;
//! * [`Rebuilder`] / [`churned_source`] / [`ChurnModel`] — the
//!   background loop constructing generation `g + 1` through
//!   `ssor_engine::Pipeline` under topology/seed churn and swapping it
//!   in without stalling readers.
//!
//! **Determinism contract.** A reply is a pure function of
//! `(generation, request_id)`: its RNG stream is [`query_seed`]-derived,
//! the snapshot for each generation is itself a deterministic flatten of
//! a deterministic build, and a batch is answered against a single
//! snapshot. So replies are bit-identical at any shard count and under
//! any swap timing, and any logged reply can be audited offline by
//! rebuilding its generation and replaying its id.
//!
//! # Examples
//!
//! ```
//! use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
//! use ssor_serve::{EpochCell, QueryPlane, Request};
//! use std::sync::Arc;
//!
//! let prepared = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
//!     .template(TemplateSpec::Valiant)
//!     .alpha(2)
//!     .prepare(&Default::default());
//! let cell = Arc::new(EpochCell::new(Arc::new(prepared.route_table(0).unwrap())));
//! let plane = QueryPlane::new(Arc::clone(&cell), 4, 2);
//! let batch = plane.answer_batch(&[Request { id: 1, s: 0, t: 7 }]);
//! assert_eq!(batch.replies[0].paths.len(), 4);
//! assert_eq!(batch.unroutable, 0);
//! // Publishing a new generation never stalls or perturbs readers:
//! cell.publish(Arc::new(prepared.route_table(1).unwrap()));
//! assert_eq!(plane.generation(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod epoch;
mod query;
mod rebuild;

pub use epoch::{EpochCell, EpochReader};
pub use query::{
    answer_batch_on, answer_on, query_seed, BatchOutcome, QueryPlane, Reply, Request,
    QUERY_STREAM_TAG,
};
pub use rebuild::{churned_source, ChurnModel, Rebuilder};
