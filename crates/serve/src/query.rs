//! The sharded query front-end: deterministic per-pair path sampling.
//!
//! A query asks for the `α` sampled paths of one pair. The answer is a
//! **pure function of `(generation, request_id)`**: the RNG stream is
//! counter-derived via [`query_seed`], so a reply can be replayed
//! bit-exactly from the generation recorded in it — regardless of which
//! shard answered, how many shards there were, or whether a generation
//! swap was in flight. That is the whole determinism contract of the
//! serving plane, and the tests pin it.

use crate::epoch::EpochCell;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssor_graph::{derive_seed, PathId, RouteTable, VertexId};
use std::sync::Arc;

/// Tag mixed into [`query_seed`], decorrelating the query plane's RNG
/// streams from every other derived-seed stream in the workspace (the
/// simulation, failure-sweep, and FRT-tree tags pick the same shape).
pub const QUERY_STREAM_TAG: u64 = 0x5E2E_9A11_D3C0_DE01;

/// The RNG seed answering request `request_id` against generation
/// `generation` — public so one reply can be replayed in isolation.
///
/// # Examples
///
/// ```
/// use ssor_serve::query_seed;
/// assert_eq!(query_seed(3, 17), query_seed(3, 17));
/// assert_ne!(query_seed(3, 17), query_seed(4, 17));
/// assert_ne!(query_seed(3, 17), query_seed(3, 18));
/// ```
pub fn query_seed(generation: u64, request_id: u64) -> u64 {
    derive_seed(generation ^ QUERY_STREAM_TAG, request_id)
}

/// One path-sample query: "give me my `α` paths for `(s, t)`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned id; drives the reply's RNG stream, so replaying
    /// the same id against the same generation reproduces the reply.
    pub id: u64,
    /// Source vertex.
    pub s: VertexId,
    /// Target vertex (distinct from `s`).
    pub t: VertexId,
}

/// A served reply: `α` path ids sampled from the pair's distribution,
/// stamped with the generation that answered (the replay key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Echo of [`Request::id`].
    pub request_id: u64,
    /// Generation of the [`RouteTable`] snapshot that answered.
    pub generation: u64,
    /// The sampled paths, in draw order (duplicates allowed — sampling
    /// is with replacement, Definition 5.2). Empty exactly when the
    /// pair was not in the table (`α >= 1` everywhere else).
    pub paths: Vec<PathId>,
}

impl Reply {
    /// Whether this reply marks an unroutable pair — the table had no
    /// entry for `(s, t)`, so no paths were drawn. Unroutable requests
    /// are served, counted, and echoed rather than panicking a shard:
    /// one malformed pair must never take the query plane down.
    pub fn is_unroutable(&self) -> bool {
        self.paths.is_empty()
    }
}

/// The result of answering one batch: per-request replies in request
/// order, plus how many of them were unroutable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// One reply per request, in request order. Unroutable requests
    /// yield an empty-paths reply (see [`Reply::is_unroutable`]).
    pub replies: Vec<Reply>,
    /// Number of unroutable replies in `replies`.
    pub unroutable: usize,
}

/// Answers one request against an explicit snapshot. `None` when the
/// table has no entry for the pair.
///
/// # Examples
///
/// ```
/// use ssor_engine::{Pipeline, TemplateSpec, TopologySpec};
/// use ssor_serve::{answer_on, Request};
///
/// let p = Pipeline::on(TopologySpec::Hypercube { dim: 3 })
///     .template(TemplateSpec::Valiant)
///     .alpha(2)
///     .prepare(&Default::default());
/// let table = p.route_table(1).unwrap();
/// let req = Request { id: 42, s: 0, t: 7 };
/// let reply = answer_on(&table, 4, &req).unwrap();
/// assert_eq!(reply.paths.len(), 4);
/// // Bit-exact replay from (generation, request_id):
/// assert_eq!(reply, answer_on(&table, 4, &req).unwrap());
/// ```
pub fn answer_on(table: &RouteTable, alpha: usize, req: &Request) -> Option<Reply> {
    let mut rng = StdRng::seed_from_u64(query_seed(table.generation(), req.id));
    // The reply owns its paths, so this is the one per-request
    // allocation — explicit-capacity, never grown.
    let mut paths = Vec::with_capacity(alpha);
    if !table.sample_alpha_into(req.s, req.t, alpha, &mut rng, &mut paths) {
        return None;
    }
    Some(Reply {
        request_id: req.id,
        generation: table.generation(),
        paths,
    })
}

/// Answers one request infallibly: an unroutable pair yields the
/// counted empty-paths reply instead of `None`.
fn serve_one(table: &RouteTable, alpha: usize, req: &Request, unroutable: &mut usize) -> Reply {
    match answer_on(table, alpha, req) {
        Some(reply) => reply,
        None => {
            *unroutable += 1;
            Reply {
                request_id: req.id,
                generation: table.generation(),
                // An empty Vec never allocates.
                paths: Vec::new(), // lint: allow(hot_alloc)
            }
        }
    }
}

/// The sharded query front-end over an epoch-swapped [`RouteTable`].
///
/// A batch is answered against **one** snapshot (a single epoch read at
/// batch start), fanned out round-robin over `shards` OS threads, and
/// merged back in request order. Because each reply depends only on
/// `(generation, request_id)`, the batch result is bit-identical at any
/// shard count, and a concurrent [`publish`](EpochCell::publish) neither
/// stalls the batch nor perturbs it — the next batch simply opens on the
/// new generation.
#[derive(Debug, Clone)]
pub struct QueryPlane {
    cell: Arc<EpochCell<RouteTable>>,
    alpha: usize,
    shards: usize,
}

impl QueryPlane {
    /// A plane answering `alpha` paths per request over `shards` worker
    /// threads (1 = serial in the caller's thread).
    ///
    /// # Panics
    ///
    /// Panics if `alpha == 0` or `shards == 0`.
    pub fn new(cell: Arc<EpochCell<RouteTable>>, alpha: usize, shards: usize) -> Self {
        assert!(alpha >= 1, "alpha must be positive");
        assert!(shards >= 1, "need at least one shard");
        QueryPlane {
            cell,
            alpha,
            shards,
        }
    }

    /// Paths sampled per request.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Worker threads per batch.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The generation the next batch would open on.
    pub fn generation(&self) -> u64 {
        self.cell.load().generation()
    }

    /// Answers a batch of requests, in request order. Unroutable pairs
    /// are counted in the outcome, never panicked on.
    pub fn answer_batch(&self, requests: &[Request]) -> BatchOutcome {
        let table = self.cell.load();
        answer_batch_on(&table, self.alpha, self.shards, requests)
    }
}

/// [`QueryPlane::answer_batch`] against an explicit snapshot: round-robin
/// over `shards` threads (request `i` goes to shard `i % shards`), merged
/// back in request order. Sharding moves wall-clock only — replies are a
/// per-request pure function, so the outcome is identical at any count.
/// A request whose pair is missing from the table yields a counted
/// empty-paths reply (see [`Reply::is_unroutable`]); every other reply
/// is byte-for-byte what [`answer_on`] returns for it.
///
/// # Panics
///
/// Panics if `alpha == 0` or `shards == 0` (configuration errors, not
/// per-request conditions).
pub fn answer_batch_on(
    table: &RouteTable,
    alpha: usize,
    shards: usize,
    requests: &[Request],
) -> BatchOutcome {
    assert!(alpha >= 1, "alpha must be positive");
    assert!(shards >= 1, "need at least one shard");
    if shards == 1 || requests.len() <= 1 {
        let mut replies = Vec::with_capacity(requests.len());
        let mut unroutable = 0;
        for req in requests {
            // Appends into the per-batch reserve above.
            replies.push(serve_one(table, alpha, req, &mut unroutable)); // lint: allow(hot_alloc)
        }
        return BatchOutcome {
            replies,
            unroutable,
        };
    }
    let shards = shards.min(requests.len());
    let mut per_shard: Vec<Vec<Reply>> = Vec::with_capacity(shards);
    let mut unroutable = 0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|k| {
                scope.spawn(move || {
                    // Per-shard scratch, reserved once per batch.
                    let mut out = Vec::with_capacity(requests.len().div_ceil(shards));
                    let mut missed = 0;
                    for req in requests.iter().skip(k).step_by(shards) {
                        out.push(serve_one(table, alpha, req, &mut missed)); // lint: allow(hot_alloc)
                    }
                    (out, missed)
                })
            })
            .collect::<Vec<_>>(); // lint: allow(hot_alloc) — one handle per shard, per batch
        for h in handles {
            // A shard panic is a process-level bug (serving never
            // panics per-request); re-raising it here is the only
            // honest option.
            let (out, missed) = h.join().expect("query shard panicked"); // lint: allow(hot_panic)
            per_shard.push(out); // lint: allow(hot_alloc) — per-batch merge setup
            unroutable += missed;
        }
    });
    // Inverse of the round-robin split: request i is the next unconsumed
    // reply of shard i % shards — a move, never a clone.
    let mut cursors: Vec<_> = per_shard.into_iter().map(Vec::into_iter).collect(); // lint: allow(hot_alloc)
    let mut replies = Vec::with_capacity(requests.len());
    for i in 0..requests.len() {
        if let Some(reply) = cursors.get_mut(i % shards).and_then(Iterator::next) {
            replies.push(reply); // lint: allow(hot_alloc) — per-batch reserve above
        }
    }
    BatchOutcome {
        replies,
        unroutable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_engine::{route_table_all_pairs, Pipeline, TemplateSpec, TopologySpec};
    use ssor_oblivious::ValiantRouting;

    fn table(generation: u64) -> RouteTable {
        route_table_all_pairs(&ValiantRouting::new(3), generation)
    }

    fn requests(count: u64) -> Vec<Request> {
        (0..count)
            .map(|i| Request {
                id: i,
                s: (i % 8) as VertexId,
                t: ((i + 3) % 8) as VertexId,
            })
            .collect()
    }

    #[test]
    fn replies_are_pure_in_generation_and_request_id() {
        let t5 = table(5);
        let req = Request { id: 9, s: 1, t: 6 };
        let a = answer_on(&t5, 3, &req).unwrap();
        let b = answer_on(&t5, 3, &req).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.generation, 5);
        // A different generation re-seeds the stream.
        let c = answer_on(&table(6), 3, &req).unwrap();
        assert_eq!(c.generation, 6);
        // (Streams may coincide on tiny supports; the seed must differ.)
        assert_ne!(query_seed(5, 9), query_seed(6, 9));
    }

    #[test]
    fn shard_count_never_changes_the_batch() {
        let t = table(2);
        let reqs = requests(37);
        let one = answer_batch_on(&t, 4, 1, &reqs);
        for shards in [2, 3, 8, 64] {
            assert_eq!(one, answer_batch_on(&t, 4, shards, &reqs), "{shards}");
        }
        assert_eq!(one.replies.len(), 37);
        assert_eq!(one.unroutable, 0);
        assert!(one
            .replies
            .iter()
            .enumerate()
            .all(|(i, r)| r.request_id == i as u64));
    }

    #[test]
    fn plane_answers_through_the_cell() {
        let cell = Arc::new(EpochCell::new(Arc::new(table(0))));
        let plane = QueryPlane::new(Arc::clone(&cell), 2, 4);
        let reqs = requests(10);
        let before = plane.answer_batch(&reqs);
        assert!(before.replies.iter().all(|r| r.generation == 0));
        cell.publish(Arc::new(table(1)));
        let after = plane.answer_batch(&reqs);
        assert!(after.replies.iter().all(|r| r.generation == 1));
        // Replay contract: the old batch still reproduces from gen 0.
        let replay = answer_batch_on(&table(0), 2, 1, &reqs);
        assert_eq!(before, replay);
    }

    #[test]
    fn works_against_engine_snapshots() {
        let p = Pipeline::on(TopologySpec::Grid { rows: 3, cols: 3 })
            .template(TemplateSpec::FrtEnsemble { trees: 3 })
            .alpha(2)
            .prepare(&Default::default());
        let t = p.route_table(4).unwrap();
        let req = Request { id: 0, s: 0, t: 8 };
        let r = answer_on(&t, 5, &req).unwrap();
        assert_eq!(r.paths.len(), 5);
        for id in &r.paths {
            let path = t.store().materialize(*id);
            assert_eq!(path.source(), 0);
            assert_eq!(path.target(), 8);
        }
    }

    #[test]
    fn missing_pairs_are_counted_not_panicked() {
        let t = table(3);
        let mut reqs = requests(12);
        reqs[5] = Request {
            id: 5,
            s: 0,
            t: 200,
        };
        for shards in [1, 4] {
            let out = answer_batch_on(&t, 2, shards, &reqs);
            assert_eq!(out.replies.len(), 12, "every request gets a reply");
            assert_eq!(out.unroutable, 1);
            let miss = &out.replies[5];
            assert!(miss.is_unroutable());
            assert_eq!(miss.request_id, 5);
            assert_eq!(miss.generation, 3);
            // Every routable reply is bit-identical to its standalone
            // answer — the bad pair perturbs nothing around it.
            for (i, r) in out.replies.iter().enumerate() {
                if i != 5 {
                    assert_eq!(*r, answer_on(&t, 2, &reqs[i]).unwrap());
                }
            }
        }
        // An all-unroutable batch still returns, counting every miss.
        let bad = vec![
            Request {
                id: 0,
                s: 0,
                t: 200,
            },
            Request {
                id: 1,
                s: 0,
                t: 201,
            },
        ];
        let out = answer_batch_on(&t, 2, 2, &bad);
        assert_eq!(out.unroutable, 2);
        assert!(out.replies.iter().all(Reply::is_unroutable));
    }
}
