//! # ssor-sim
//!
//! A synchronous store-and-forward packet-scheduling simulator.
//!
//! The paper's completion-time objective (Section 7) is
//! `congestion + dilation`; the classic scheduling results [LMR94, GH16]
//! justify it by showing any path collection can be scheduled in
//! `O(congestion + dilation)` rounds. This crate *measures* actual
//! schedule lengths, validating that reading of the objective: experiment
//! E6 compares `makespan` against `C + D` across schedulers.
//!
//! ## Model
//!
//! Time advances in unit rounds. Each packet follows a fixed path; in each
//! round every *edge* forwards at most one packet (undirected capacity 1,
//! matching the congestion model), chosen by the configured
//! [`Scheduler`]. Everything is deterministic given the scheduler and
//! seed.
//!
//! # Examples
//!
//! ```
//! use ssor_sim::{simulate, Scheduler, SimConfig};
//! use ssor_graph::{generators, Path};
//!
//! let g = generators::ring(6);
//! let paths = vec![
//!     Path::from_vertices(&g, &[0, 1, 2, 3]).unwrap(),
//!     Path::from_vertices(&g, &[5, 4, 3]).unwrap(),
//! ];
//! let out = simulate(&g, &paths, &SimConfig { scheduler: Scheduler::Fifo, seed: 0 });
//! assert!(out.makespan >= 3, "the 3-hop packet needs 3 rounds");
//! assert!(out.makespan <= out.congestion * out.dilation + 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ssor_graph::{Graph, Path, PathId, PathStore};

/// Contention-resolution policy used when several packets want the same
/// edge in the same round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Lowest packet id first (arrival order).
    Fifo,
    /// The packet with the most remaining hops first (longest-remaining-
    /// path; a good heuristic for makespan).
    FarthestToGo,
    /// A random fixed priority per packet (the LMR94-style random-rank
    /// schedule that realizes `O(C + D)` with high probability).
    RandomRank,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Contention policy.
    pub scheduler: Scheduler,
    /// Seed for [`Scheduler::RandomRank`] (ignored otherwise).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduler: Scheduler::RandomRank,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// The same configuration with a different seed — dynamic-scenario
    /// stages derive one seed per stream step so repeated simulations do
    /// not share `RandomRank` priorities.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = ssor_sim::SimConfig::default().with_seed(7);
    /// assert_eq!(cfg.seed, 7);
    /// ```
    pub fn with_seed(&self, seed: u64) -> SimConfig {
        SimConfig {
            seed,
            ..self.clone()
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Rounds until the last packet arrived.
    pub makespan: usize,
    /// Max number of packets sharing an edge (`C`).
    pub congestion: usize,
    /// Max path length (`D`).
    pub dilation: usize,
    /// Per-packet arrival round.
    pub arrival: Vec<usize>,
}

impl SimOutcome {
    /// `makespan / (C + D)` — the scheduling overhead relative to the
    /// paper's objective (1.0 would be a perfect schedule; the classic
    /// guarantee is `O(1)`).
    pub fn overhead(&self) -> f64 {
        let denom = (self.congestion + self.dilation) as f64;
        if denom == 0.0 {
            1.0
        } else {
            self.makespan as f64 / denom
        }
    }
}

/// Runs the synchronous simulation on packets given as interned path ids
/// (a *multiset*: the same id may appear many times, one packet each).
///
/// This is the hot-loop entry point: each round reads packet hops
/// straight out of the [`PathStore`]'s flat arrays, and the per-round
/// claim table is one reused allocation. [`simulate`] and
/// [`simulate_routing`] are boundary wrappers over this.
///
/// # Panics
///
/// Panics if some path is invalid for `g`.
pub fn simulate_ids(
    g: &Graph,
    store: &PathStore,
    packets: &[PathId],
    config: &SimConfig,
) -> SimOutcome {
    for &id in packets {
        assert!(
            store.is_valid(id, g),
            "invalid path {:?}",
            store.materialize(id)
        );
    }
    let np = packets.len();
    // Static priorities; smaller = served first.
    let mut rank: Vec<usize> = (0..np).collect();
    if config.scheduler == Scheduler::RandomRank {
        let mut rng = StdRng::seed_from_u64(config.seed);
        rank.shuffle(&mut rng);
    }

    // Static stats.
    let mut edge_use = vec![0usize; g.m()];
    let mut dilation = 0usize;
    for &id in packets {
        dilation = dilation.max(store.hop(id));
        for &e in store.edges(id) {
            edge_use[e as usize] += 1;
        }
    }
    let congestion = edge_use.iter().copied().max().unwrap_or(0);

    // Dynamic state: next hop index per packet.
    let mut pos = vec![0usize; np];
    let mut arrival = vec![0usize; np];
    let mut remaining: Vec<usize> = (0..np).filter(|&i| store.hop(packets[i]) > 0).collect();
    let mut round = 0usize;
    // Safety cap: C*D + D is a hard upper bound for greedy schedules here.
    let cap = congestion * dilation + dilation + 1;

    // Claims: edge -> best (priority, packet); reused across rounds.
    let mut claim: Vec<Option<usize>> = vec![None; g.m()];
    while !remaining.is_empty() {
        round += 1;
        assert!(
            round <= cap.max(1),
            "scheduler exceeded the C*D + D bound; this is a bug"
        );
        claim.fill(None);
        for &i in &remaining {
            let e = store.edges(packets[i])[pos[i]] as usize;
            let better = match claim[e] {
                None => true,
                Some(j) => match config.scheduler {
                    Scheduler::Fifo => i < j,
                    Scheduler::RandomRank => rank[i] < rank[j],
                    Scheduler::FarthestToGo => {
                        let ri = store.hop(packets[i]) - pos[i];
                        let rj = store.hop(packets[j]) - pos[j];
                        ri > rj || (ri == rj && i < j)
                    }
                },
            };
            if better {
                claim[e] = Some(i);
            }
        }
        // Advance winners.
        let mut still = Vec::with_capacity(remaining.len());
        let winners: std::collections::HashSet<usize> = claim.iter().copied().flatten().collect();
        for &i in &remaining {
            if winners.contains(&i) {
                pos[i] += 1;
                if pos[i] == store.hop(packets[i]) {
                    arrival[i] = round;
                    continue;
                }
            }
            still.push(i);
        }
        remaining = still;
    }

    SimOutcome {
        makespan: round,
        congestion,
        dilation,
        arrival,
    }
}

/// Runs the synchronous simulation until every packet reaches its target.
///
/// Packets with zero-hop paths arrive at round 0. The run is guaranteed to
/// terminate: in any round with unfinished packets, at least one packet
/// advances (every contended edge advances exactly one packet per round).
///
/// Boundary wrapper: interns `paths` into a fresh [`PathStore`]
/// (duplicate paths share storage but remain distinct packets) and runs
/// [`simulate_ids`].
///
/// # Panics
///
/// Panics if some path is invalid for `g`.
pub fn simulate(g: &Graph, paths: &[Path], config: &SimConfig) -> SimOutcome {
    let mut store = PathStore::new();
    let packets: Vec<PathId> = paths.iter().map(|p| store.intern(p)).collect();
    simulate_ids(g, &store, &packets, config)
}

/// Convenience: simulate an [`ssor_flow::IntegralRouting`]'s paths
/// (multiplicities preserved).
pub fn simulate_routing(
    g: &Graph,
    routing: &ssor_flow::IntegralRouting,
    config: &SimConfig,
) -> SimOutcome {
    let mut store = PathStore::new();
    let mut packets: Vec<PathId> = Vec::new();
    for (s, t) in routing.pairs() {
        if let Some(ps) = routing.paths(s, t) {
            packets.extend(ps.iter().map(|p| store.intern(p)));
        }
    }
    simulate_ids(g, &store, &packets, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssor_graph::generators;

    fn line_paths(g: &Graph, specs: &[&[u32]]) -> Vec<Path> {
        specs
            .iter()
            .map(|vs| Path::from_vertices(g, vs).unwrap())
            .collect()
    }

    #[test]
    fn single_packet_takes_its_hop_count() {
        let g = generators::ring(8);
        let paths = line_paths(&g, &[&[0, 1, 2, 3, 4]]);
        for sched in [
            Scheduler::Fifo,
            Scheduler::FarthestToGo,
            Scheduler::RandomRank,
        ] {
            let out = simulate(
                &g,
                &paths,
                &SimConfig {
                    scheduler: sched,
                    seed: 1,
                },
            );
            assert_eq!(out.makespan, 4);
            assert_eq!(out.dilation, 4);
            assert_eq!(out.congestion, 1);
            assert!((out.overhead() - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn contention_serializes_on_shared_edge() {
        // Three packets all crossing edge (0,1).
        let g = generators::ring(4);
        let paths = line_paths(&g, &[&[0, 1], &[0, 1], &[0, 1]]);
        let out = simulate(
            &g,
            &paths,
            &SimConfig {
                scheduler: Scheduler::Fifo,
                seed: 0,
            },
        );
        assert_eq!(out.congestion, 3);
        assert_eq!(out.makespan, 3, "one per round over the shared edge");
        assert_eq!(out.arrival, vec![1, 2, 3], "FIFO order");
    }

    #[test]
    fn makespan_at_least_max_c_d() {
        let g = generators::grid(3, 3);
        let paths = line_paths(&g, &[&[0, 1, 2, 5, 8], &[0, 1, 2], &[6, 7, 8], &[0, 3, 6]]);
        for sched in [
            Scheduler::Fifo,
            Scheduler::FarthestToGo,
            Scheduler::RandomRank,
        ] {
            let out = simulate(
                &g,
                &paths,
                &SimConfig {
                    scheduler: sched,
                    seed: 3,
                },
            );
            assert!(out.makespan >= out.dilation);
            assert!(out.makespan >= out.congestion);
            assert!(out.makespan <= out.congestion * out.dilation + out.dilation);
        }
    }

    #[test]
    fn zero_hop_paths_arrive_immediately() {
        let g = generators::ring(4);
        let paths = vec![Path::trivial(2)];
        let out = simulate(&g, &paths, &SimConfig::default());
        assert_eq!(out.makespan, 0);
        assert_eq!(out.arrival, vec![0]);
    }

    #[test]
    fn empty_instance() {
        let g = generators::ring(4);
        let out = simulate(&g, &[], &SimConfig::default());
        assert_eq!(out.makespan, 0);
        assert_eq!(out.congestion, 0);
        assert_eq!(out.dilation, 0);
    }

    #[test]
    fn farthest_to_go_prioritizes_long_paths() {
        // Long packet and short packet contend on the first edge; FTG lets
        // the long one through first, finishing both in dilation + 1.
        let g = generators::ring(8);
        let paths = line_paths(&g, &[&[0, 1], &[0, 1, 2, 3, 4, 5]]);
        let out = simulate(
            &g,
            &paths,
            &SimConfig {
                scheduler: Scheduler::FarthestToGo,
                seed: 0,
            },
        );
        assert_eq!(out.arrival[1], 5, "long packet unimpeded");
        assert_eq!(out.arrival[0], 2, "short one waits a round");
    }

    #[test]
    fn random_rank_overhead_stays_constant_factor() {
        // Random permutation demand on a hypercube routed greedily; the
        // random-rank schedule should stay within a small factor of C + D.
        use rand::Rng;
        let g = generators::hypercube(5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut paths = Vec::new();
        for _ in 0..32 {
            let s = rng.gen_range(0..32) as u32;
            let t = rng.gen_range(0..32) as u32;
            if s != t {
                paths.push(ssor_graph::shortest_path::bfs_path(&g, s, t).unwrap());
            }
        }
        let out = simulate(
            &g,
            &paths,
            &SimConfig {
                scheduler: Scheduler::RandomRank,
                seed: 4,
            },
        );
        assert!(out.overhead() <= 3.0, "overhead {}", out.overhead());
    }

    #[test]
    fn simulate_routing_counts_multiplicity() {
        let g = generators::ring(4);
        let mut ir = ssor_flow::IntegralRouting::new();
        let p = Path::from_vertices(&g, &[0, 1]).unwrap();
        ir.set_paths(0, 1, vec![p.clone(), p]);
        let out = simulate_routing(&g, &ir, &SimConfig::default());
        assert_eq!(out.congestion, 2);
        assert_eq!(out.makespan, 2);
    }
}
